//! The six lint passes, token-level, over a [`SourceFile`].
//!
//! Each pass receives the token stream (strings/comments already
//! stripped), the per-token test-region flags, and the comment-line map
//! for adjacency checks. Passes report raw findings; waiving via pragmas
//! happens in [`crate::lint_source`].

use crate::lexer::{Tok, TokKind};
use crate::policy::{fma_kernel_file, Pass};
use crate::{Finding, SourceFile};

/// Comment-adjacency window: a `// SAFETY:` / `// ordering:` justification
/// counts on the same line, or above it separated by at most this many
/// non-comment lines (so one comment can cover a short cluster, e.g. the
/// four stores of a histogram record). Comment lines never count toward
/// the gap: a justification may open a tall comment block.
const ADJACENT_LINES: u32 = 4;

pub fn run_pass(pass: Pass, file: &SourceFile, provenance: &str, out: &mut Vec<Finding>) {
    match pass {
        Pass::NoRawPrint => no_raw_print(file, provenance, out),
        Pass::Determinism => determinism(file, provenance, out),
        Pass::PanicDiscipline => panic_discipline(file, provenance, out),
        Pass::FloatDiscipline => float_discipline(file, provenance, out),
        Pass::UnsafeAudit => unsafe_audit(file, provenance, out),
        Pass::AtomicsAudit => atomics_audit(file, provenance, out),
        Pass::Pragma => {} // emitted by lint_source itself
    }
}

fn finding(pass: Pass, t: &Tok, message: String, provenance: &str) -> Finding {
    Finding {
        pass,
        line: t.line,
        col: t.col,
        message,
        policy: provenance.to_string(),
        file: String::new(), // filled by lint_source
    }
}

/// Is the token at `i` an identifier with this exact text?
fn ident_is(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_is(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

// ---------------------------------------------------------------------
// no-raw-print
// ---------------------------------------------------------------------

const PRINT_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];

fn no_raw_print(file: &SourceFile, prov: &str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && punct_is(toks, i + 1, "!")
        {
            out.push(finding(
                Pass::NoRawPrint,
                t,
                format!("raw `{}!` in library code — log via archline-obs", t.text),
                prov,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

/// Idents banned outright in seeded result paths.
const ENTROPY_IDENTS: &[(&str, &str)] = &[
    ("SystemTime", "wall-clock time"),
    ("from_entropy", "OS entropy seeds an RNG stream"),
    ("thread_rng", "thread-local entropy-seeded RNG"),
    ("HashMap", "iteration order is randomized per process — use BTreeMap or a sorted Vec"),
    ("HashSet", "iteration order is randomized per process — use BTreeSet or a sorted Vec"),
];

fn determinism(file: &SourceFile, prov: &str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some((_, why)) = ENTROPY_IDENTS.iter().find(|(name, _)| *name == t.text) {
            out.push(finding(
                Pass::Determinism,
                t,
                format!("`{}` in a seeded result path: {why}", t.text),
                prov,
            ));
        } else if t.text == "Instant"
            && punct_is(toks, i + 1, "::")
            && ident_is(toks, i + 2, "now")
        {
            out.push(finding(
                Pass::Determinism,
                t,
                "`Instant::now` in a seeded result path: wall-clock reads make results \
                 run-dependent"
                    .to_string(),
                prov,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// panic-discipline
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_discipline(file: &SourceFile, prov: &str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            // `.unwrap()` / `.expect(` — method position only, so
            // `unwrap_or_else` and locally defined `expect` fns with
            // other shapes don't trip.
            TokKind::Ident
                if (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && punct_is(toks, i - 1, ".")
                    && punct_is(toks, i + 1, "(") =>
            {
                out.push(finding(
                    Pass::PanicDiscipline,
                    t,
                    format!(
                        "`.{}()` in a catch_unwind-clean hot path — return the crate's \
                         typed error instead",
                        t.text
                    ),
                    prov,
                ));
            }
            TokKind::Ident
                if PANIC_MACROS.contains(&t.text.as_str()) && punct_is(toks, i + 1, "!") =>
            {
                out.push(finding(
                    Pass::PanicDiscipline,
                    t,
                    format!("`{}!` in a catch_unwind-clean hot path", t.text),
                    prov,
                ));
            }
            TokKind::Punct if t.text == "[" => {
                // Indexing by integer literal: `expr[0]`. The token before
                // `[` must end an expression (ident, `)`, `]`, `?`); array
                // literals/types (`[0u8; 4]`, `[usize; 2]`) don't match.
                let indexing = i > 0
                    && toks.get(i - 1).is_some_and(|p| {
                        p.kind == TokKind::Ident
                            || (p.kind == TokKind::Punct
                                && (p.text == ")" || p.text == "]" || p.text == "?"))
                    });
                if indexing
                    && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Int)
                    && punct_is(toks, i + 2, "]")
                {
                    out.push(finding(
                        Pass::PanicDiscipline,
                        t,
                        format!(
                            "indexing by literal `[{}]` in a catch_unwind-clean hot path — \
                             use `.first()`/`.get({})` and handle None",
                            toks[i + 1].text,
                            toks[i + 1].text
                        ),
                        prov,
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// float-discipline
// ---------------------------------------------------------------------

/// Does this float-literal text denote exactly zero? (`0.0`, `0.`, `0e9`,
/// `0_000.00f64` …) — comparing against literal zero is IEEE-exact and is
/// the workspace's documented sentinel idiom, so it is policy-exempt.
fn is_zero_literal(text: &str) -> bool {
    let cleaned: String = text
        .chars()
        .filter(|c| *c != '_')
        .take_while(|c| !c.is_ascii_alphabetic() || *c == 'e' || *c == 'E')
        .collect();
    cleaned.parse::<f64>().is_ok_and(|v| v == 0.0)
}

/// Token kinds that can end the left operand of a binary `*` / `+`.
fn ends_operand(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
        || (t.kind == TokKind::Punct && matches!(t.text.as_str(), ")" | "]" | "?"))
}

/// Token kinds that can start the right operand of a binary `*` / `+`.
fn starts_operand(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
        || (t.kind == TokKind::Punct && matches!(t.text.as_str(), "(" | "-" | "&" | "*"))
}

fn float_discipline(file: &SourceFile, prov: &str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    // (a) float-literal equality.
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        // The float literal can sit directly before, directly after, or
        // after a unary minus.
        let lit = if toks.get(i.wrapping_sub(1)).is_some_and(|p| p.kind == TokKind::Float) {
            toks.get(i - 1)
        } else if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float) {
            toks.get(i + 1)
        } else if punct_is(toks, i + 1, "-")
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Float)
        {
            toks.get(i + 2)
        } else {
            None
        };
        let Some(lit) = lit else { continue };
        if is_zero_literal(&lit.text) {
            continue; // exact-zero sentinel: policy-exempt, see docs/lint.md
        }
        out.push(finding(
            Pass::FloatDiscipline,
            t,
            format!(
                "float `{}` against literal `{}` — exact equality holds only for \
                 propagated literals; compare with a tolerance or justify propagation",
                t.text, lit.text
            ),
            prov,
        ));
    }

    // (b) bare multiply-add shapes in kernel files.
    if !fma_kernel_file(&file.class) {
        return;
    }
    let mut i = 0;
    while i < toks.len() {
        if file.in_test[i] {
            i += 1;
            continue;
        }
        // Scan one source line at a time.
        // A binary `*` and a binary `+` on one line is the fma shape in
        // either order (`a*b + c` and `c + a*b` round twice alike).
        let line = toks[i].line;
        let mut j = i;
        let mut saw_mul = false;
        let mut saw_add = false;
        let mut hit: Option<usize> = None;
        while j < toks.len() && toks[j].line == line {
            let t = &toks[j];
            if t.kind == TokKind::Punct && (t.text == "*" || t.text == "+") {
                let binary = j > 0
                    && ends_operand(&toks[j - 1])
                    && toks.get(j + 1).is_some_and(starts_operand);
                if binary {
                    if t.text == "*" {
                        saw_mul = true;
                    } else {
                        saw_add = true;
                    }
                    if saw_mul && saw_add && hit.is_none() {
                        hit = Some(j);
                    }
                }
            }
            j += 1;
        }
        if let Some(h) = hit {
            out.push(finding(
                Pass::FloatDiscipline,
                &toks[h],
                "bare `a*b + c` shape in a mul_add-discipline kernel file — use \
                 `mul_add` or waive with the canonical-form/bit-identity provenance"
                    .to_string(),
                prov,
            ));
        }
        i = j;
    }
}

// ---------------------------------------------------------------------
// unsafe-audit / atomics-audit (comment-adjacency passes)
// ---------------------------------------------------------------------

/// Does a comment containing `marker` justify `line`? Same line always
/// counts; scanning upward, comment lines are searched without limit but
/// at most [`ADJACENT_LINES`] non-comment lines may intervene.
fn justified(file: &SourceFile, line: u32, marker: &str) -> bool {
    let has = |l: u32| {
        file.comment_lines
            .get(&l)
            .is_some_and(|texts| texts.iter().any(|t| t.contains(marker)))
    };
    if has(line) {
        return true;
    }
    let mut gap = 0u32;
    let mut l = line;
    while l > 1 && gap <= ADJACENT_LINES {
        l -= 1;
        if file.comment_lines.contains_key(&l) {
            if has(l) {
                return true;
            }
        } else {
            gap += 1;
        }
    }
    false
}

fn unsafe_audit(file: &SourceFile, prov: &str, out: &mut Vec<Finding>) {
    for t in &file.toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" && !justified(file, t.line, "SAFETY:") {
            out.push(finding(
                Pass::UnsafeAudit,
                t,
                "`unsafe` without an adjacent `// SAFETY:` comment stating the \
                 aliasing/lifetime argument"
                    .to_string(),
                prov,
            ));
        }
    }
}

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn atomics_audit(file: &SourceFile, prov: &str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let mut last_line = 0u32;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && t.text == "Ordering"
            && punct_is(toks, i + 1, "::")
            && toks.get(i + 2).is_some_and(|n| ORDERINGS.contains(&n.text.as_str()))
        {
            // `use std::sync::atomic::Ordering` imports don't match (no
            // `::Variant` after), and one finding per line is enough even
            // when a line both loads and stores.
            if t.line == last_line {
                continue;
            }
            last_line = t.line;
            if !justified(file, t.line, "ordering:") {
                out.push(finding(
                    Pass::AtomicsAudit,
                    t,
                    format!(
                        "`Ordering::{}` without an adjacent `// ordering:` justification",
                        toks[i + 2].text
                    ),
                    prov,
                ));
            }
        }
    }
}
