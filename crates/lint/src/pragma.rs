//! `// lint:allow(<pass>, reason = "...")` pragmas.
//!
//! Grammar (inside any line or block comment):
//!
//! ```text
//! lint:allow(<pass-name>, reason = "<non-empty justification>")
//! ```
//!
//! A pragma waives findings of `<pass-name>` on its **own line** (trailing
//! comment) or, when the pragma's line holds no code, on the **next line
//! that holds code** (intervening comment-only lines are allowed, so a
//! pragma can sit above the doc block of the construct it waives).
//!
//! Pragma hygiene is itself linted (pass `pragma`, not waivable):
//! an unknown pass name, a missing/empty `reason`, a malformed pragma
//! body, and a pragma that waives nothing (unused) are all findings —
//! pragmas must stay justified and load-bearing.

use crate::policy::Pass;

/// A parsed pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The pass it waives.
    pub pass: Pass,
    /// The line whose findings it waives.
    pub target_line: u32,
    /// The line the pragma comment sits on (for unused-pragma reports).
    pub at_line: u32,
    /// Justification text (already validated non-trivial).
    pub reason: String,
}

/// A pragma-hygiene problem found while parsing.
#[derive(Debug, Clone)]
pub struct PragmaProblem {
    pub line: u32,
    pub message: String,
}

/// Extracts pragmas from one comment's text. `code_on_line` reports
/// whether a line holds any code token; `next_code_line` resolves a
/// comment-only line to the line it governs.
pub fn parse_comment(
    text: &str,
    comment_line: u32,
    code_on_line: &impl Fn(u32) -> bool,
    next_code_line: &impl Fn(u32) -> Option<u32>,
    pragmas: &mut Vec<Pragma>,
    problems: &mut Vec<PragmaProblem>,
) {
    // Block comments can span lines; attribute each pragma to the line its
    // text sits on.
    for (off, line_text) in text.split('\n').enumerate() {
        let line = comment_line + off as u32;
        let mut rest = line_text;
        while let Some(idx) = rest.find("lint:allow") {
            rest = &rest[idx + "lint:allow".len()..];
            match parse_body(rest) {
                Ok((pass_name, reason, consumed)) => {
                    rest = &rest[consumed..];
                    let Some(pass) = Pass::from_name(&pass_name) else {
                        problems.push(PragmaProblem {
                            line,
                            message: format!(
                                "pragma names unknown pass `{pass_name}` (known: {})",
                                Pass::ALL.map(|p| p.name()).join(", ")
                            ),
                        });
                        continue;
                    };
                    if pass == Pass::Pragma {
                        problems.push(PragmaProblem {
                            line,
                            message: "the pragma-hygiene pass cannot be waived".to_string(),
                        });
                        continue;
                    }
                    if reason.trim().len() < 10 {
                        problems.push(PragmaProblem {
                            line,
                            message: format!(
                                "pragma for `{}` needs a written justification \
                                 (reason = \"...\" of at least 10 characters)",
                                pass.name()
                            ),
                        });
                        continue;
                    }
                    let target_line = if code_on_line(line) {
                        Some(line)
                    } else {
                        next_code_line(line)
                    };
                    let Some(target_line) = target_line else {
                        problems.push(PragmaProblem {
                            line,
                            message: format!(
                                "pragma for `{}` governs no code line",
                                pass.name()
                            ),
                        });
                        continue;
                    };
                    pragmas.push(Pragma { pass, target_line, at_line: line, reason });
                }
                Err(why) => {
                    problems.push(PragmaProblem {
                        line,
                        message: format!("malformed lint:allow pragma: {why}"),
                    });
                    break; // don't rescan the same broken tail
                }
            }
        }
    }
}

/// Parses `(<name>, reason = "<text>")` at the head of `rest`. Returns the
/// pass name, the reason, and the bytes consumed.
fn parse_body(rest: &str) -> Result<(String, String, usize), String> {
    let b = rest.trim_start();
    let lead = rest.len() - b.len();
    let b = b
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after lint:allow".to_string())?;
    let (name, b) = match b.find([',', ')']) {
        Some(i) if b.as_bytes()[i] == b',' => (b[..i].trim().to_string(), &b[i + 1..]),
        _ => return Err("expected `, reason = \"...\"` after the pass name".to_string()),
    };
    if name.is_empty() || !name.bytes().all(|c| c.is_ascii_lowercase() || c == b'-') {
        return Err(format!("pass name `{name}` must be lowercase-kebab"));
    }
    let b2 = b.trim_start();
    let b2 = b2
        .strip_prefix("reason")
        .ok_or_else(|| "expected `reason = \"...\"`".to_string())?;
    let b2 = b2.trim_start();
    let b2 = b2.strip_prefix('=').ok_or_else(|| "expected `=` after reason".to_string())?;
    let b2 = b2.trim_start();
    let b2 = b2
        .strip_prefix('"')
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    let end = b2.find('"').ok_or_else(|| "unterminated reason string".to_string())?;
    let reason = b2[..end].to_string();
    let after = &b2[end + 1..];
    let after2 = after.trim_start();
    let after2 = after2
        .strip_prefix(')')
        .ok_or_else(|| "expected `)` closing the pragma".to_string())?;
    let consumed = lead + (rest.len() - lead - after2.len());
    Ok((name, reason, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str, line: u32) -> (Vec<Pragma>, Vec<PragmaProblem>) {
        let mut pragmas = Vec::new();
        let mut problems = Vec::new();
        parse_comment(
            text,
            line,
            &|_| true,
            &|l| Some(l + 1),
            &mut pragmas,
            &mut problems,
        );
        (pragmas, problems)
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (p, e) = run(
            r#"// lint:allow(determinism, reason = "bench timer measures wall time by design")"#,
            7,
        );
        assert!(e.is_empty(), "{e:?}");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].pass, Pass::Determinism);
        assert_eq!(p[0].target_line, 7);
        assert!(p[0].reason.contains("wall time"));
    }

    #[test]
    fn reason_is_mandatory_and_substantive() {
        let (_, e) = run("// lint:allow(determinism)", 1);
        assert_eq!(e.len(), 1, "{e:?}");
        let (_, e) = run(r#"// lint:allow(determinism, reason = "ok")"#, 1);
        assert_eq!(e.len(), 1, "short reason must be rejected: {e:?}");
    }

    #[test]
    fn unknown_pass_is_a_problem() {
        let (p, e) = run(r#"// lint:allow(no-such-pass, reason = "long enough reason")"#, 1);
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("unknown pass"));
    }

    #[test]
    fn comment_only_line_targets_next_code_line() {
        let mut pragmas = Vec::new();
        let mut problems = Vec::new();
        parse_comment(
            r#"// lint:allow(unsafe-audit, reason = "justified at the call site above")"#,
            4,
            &|_| false,
            &|l| Some(l + 3),
            &mut pragmas,
            &mut problems,
        );
        assert_eq!(pragmas[0].target_line, 7);
    }
}
