//! archline-lint CLI.
//!
//! ```text
//! archline-lint [--root DIR] [--json [FILE]]
//! ```
//!
//! Walks every workspace `.rs` file, runs the six passes under the
//! path-derived policy, and prints `file:line:col: [pass] message` with
//! the policy provenance. `--json` emits the machine-readable report
//! (to FILE if given, else stdout). Exit codes: 0 clean, 1 findings,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--json" => {
                json = true;
                if args.peek().is_some_and(|a| !a.starts_with('-')) {
                    json_path = args.next().map(PathBuf::from);
                }
            }
            "--help" | "-h" => {
                println!("usage: archline-lint [--root DIR] [--json [FILE]]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let (files_checked, findings) = match archline_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        let report = archline_lint::to_json(files_checked, &findings);
        if let Some(path) = &json_path {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("wrote {}", path.display());
        } else {
            print!("{report}");
        }
    }

    // Human-readable findings go to stderr when a JSON file is the primary
    // artifact, stdout otherwise — so `--json` to stdout stays parseable.
    for f in &findings {
        let line = format!(
            "{}:{}:{}: [{}] {}\n    policy: {}",
            f.file,
            f.line,
            f.col,
            f.pass.name(),
            f.message,
            f.policy
        );
        if json && json_path.is_none() {
            eprintln!("{line}");
        } else if !json {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    }

    let summary = format!(
        "archline-lint: {} file(s) checked, {} finding(s)",
        files_checked,
        findings.len()
    );
    if json && json_path.is_none() {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
