//! A small, token-accurate Rust lexer.
//!
//! The passes need exactly enough lexical fidelity that `"Instant::now"`
//! inside a string literal, `unwrap` inside a doc comment, and `'"'` (a
//! char literal holding a quote) never produce findings — the failure
//! modes of the grep script this crate replaces. The lexer therefore
//! handles, correctly and with positions:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/** … */`), captured separately for pragma and
//!   `SAFETY:`/`ordering:` adjacency checks;
//! * string literals with escapes, byte strings, and raw strings with any
//!   hash count (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char and byte-char literals vs. lifetimes (`'"'` and `'\''` are
//!   chars, `'scope` is a lifetime);
//! * raw identifiers (`r#match`);
//! * numeric literals, classifying float vs. integer (exponents, `1.`,
//!   `0x1e5` is an int, `1..n` is an int and a range token);
//! * multi-character operators (`::`, `==`, `!=`, `..=`, `<<=`, …).
//!
//! It does **not** parse: passes work on the token stream plus a
//! brace-depth tracker ([`crate::SourceFile`] marks `#[cfg(test)]` /
//! `#[test]` regions).

/// Token classification — just enough for the passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `unwrap`, …).
    Ident,
    /// Integer literal (`3`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-6`, `2.`, `0.5f64`).
    Float,
    /// String / byte-string / raw-string literal (content dropped).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator or delimiter, longest-match (`::`, `==`, `{`, …).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// One comment (line or block) with the line it starts on. Block-comment
/// text keeps its embedded newlines; [`crate::SourceFile`] splits it back
/// into per-line text for adjacency checks.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The lexed file: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count a multi-byte UTF-8 sequence as one column; continuation
            // bytes don't advance.
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, f: impl Fn(u8) -> bool) {
        while self.peek().is_some_and(&f) {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`. Unterminated constructs (string, block comment) consume to
/// end of file rather than erroring: the linter must degrade gracefully on
/// files that don't compile yet.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                c.eat_while(|b| b != b'\n');
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                });
            }
            b'"' => {
                lex_string(&mut c);
                out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line, col });
            }
            b'r' | b'b' if raw_or_byte_literal(&mut c, &mut out, line, col) => {}
            b'\'' => lex_quote(&mut c, &mut out, line, col),
            _ if b.is_ascii_digit() => lex_number(&mut c, &mut out, line, col),
            _ if is_ident_start(b) => {
                let start = c.pos;
                c.eat_while(is_ident_continue);
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                    col,
                });
            }
            _ => lex_punct(&mut c, &mut out, line, col),
        }
    }
    out
}

/// Consumes a `"…"` string body (opening quote at the cursor).
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                return;
            }
            _ => {
                c.bump();
            }
        }
    }
}

/// Handles the `r` / `b` prefix family. Returns `true` if a literal was
/// consumed; `false` means the cursor is untouched and the caller should
/// lex an identifier.
fn raw_or_byte_literal(c: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) -> bool {
    let b0 = c.peek();
    let b1 = c.peek_at(1);
    let b2 = c.peek_at(2);
    match (b0, b1) {
        // b'x' byte char
        (Some(b'b'), Some(b'\'')) => {
            c.bump();
            lex_char_body(c);
            out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line, col });
            true
        }
        // b"…" byte string
        (Some(b'b'), Some(b'"')) => {
            c.bump();
            lex_string(c);
            out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line, col });
            true
        }
        // r"…" / r#…, br"…" / br#…, rb is not rust; r#ident is a raw ident
        (Some(b'r'), Some(b'"')) => {
            c.bump();
            lex_string_raw(c, 0);
            out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line, col });
            true
        }
        (Some(b'r'), Some(b'#')) => {
            // Count hashes; a quote after them is a raw string, an ident
            // char is a raw identifier (`r#match`).
            let mut n = 0usize;
            while c.peek_at(1 + n) == Some(b'#') {
                n += 1;
            }
            match c.peek_at(1 + n) {
                Some(b'"') => {
                    c.bump(); // r
                    for _ in 0..n {
                        c.bump();
                    }
                    lex_string_raw(c, n);
                    out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line, col });
                    true
                }
                Some(bb) if n == 1 && is_ident_start(bb) => {
                    c.bump(); // r
                    c.bump(); // #
                    let start = c.pos;
                    c.eat_while(is_ident_continue);
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                        line,
                        col,
                    });
                    true
                }
                _ => false,
            }
        }
        (Some(b'b'), Some(b'r')) if b2 == Some(b'"') || b2 == Some(b'#') => {
            let mut n = 0usize;
            while c.peek_at(2 + n) == Some(b'#') {
                n += 1;
            }
            if c.peek_at(2 + n) == Some(b'"') {
                c.bump(); // b
                c.bump(); // r
                for _ in 0..n {
                    c.bump();
                }
                lex_string_raw(c, n);
                out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line, col });
                true
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Consumes a raw-string body: opening quote at the cursor, terminated by
/// `"` followed by `hashes` `#` characters. No escapes.
fn lex_string_raw(c: &mut Cursor<'_>, hashes: usize) {
    c.bump(); // opening quote
    while let Some(b) = c.peek() {
        if b == b'"' {
            let closed = (0..hashes).all(|i| c.peek_at(1 + i) == Some(b'#'));
            if closed {
                c.bump();
                for _ in 0..hashes {
                    c.bump();
                }
                return;
            }
        }
        c.bump();
    }
}

/// `'` disambiguation: lifetime vs char literal.
fn lex_quote(c: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    // A lifetime is `'` + ident-start where the char after the ident run is
    // NOT a closing quote ('a' is a char, 'a is a lifetime).
    let is_lifetime = match (c.peek_at(1), c.peek_at(2)) {
        (Some(b1), Some(b2)) if is_ident_start(b1) && b1 != b'\\' => {
            if b2 == b'\'' {
                false // 'x'
            } else {
                true // 'x… — a lifetime even if more ident chars follow
            }
        }
        (Some(b1), None) if is_ident_start(b1) => true,
        _ => false,
    };
    if is_lifetime {
        c.bump(); // '
        let start = c.pos;
        c.eat_while(is_ident_continue);
        out.toks.push(Tok {
            kind: TokKind::Lifetime,
            text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
            line,
            col,
        });
    } else {
        lex_char_body(c);
        out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line, col });
    }
}

/// Consumes `'…'` with escapes (opening quote at the cursor).
fn lex_char_body(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'\'' => {
                c.bump();
                return;
            }
            _ => {
                c.bump();
            }
        }
    }
}

fn lex_number(c: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let start = c.pos;
    let mut float = false;
    if c.peek() == Some(b'0')
        && matches!(c.peek_at(1), Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X'))
    {
        // Radix literal: everything alphanumeric belongs to it ('e' is a
        // hex digit, never an exponent).
        c.bump();
        c.bump();
        c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    } else {
        c.eat_while(|b| b.is_ascii_digit() || b == b'_');
        // Fractional part — but `1..n` is a range, and `1.method()` is a
        // call on an integer literal.
        if c.peek() == Some(b'.') {
            let after = c.peek_at(1);
            let is_fraction = match after {
                Some(b'.') => false,                     // range
                Some(bb) if is_ident_start(bb) => false, // method call
                _ => true,                               // digit, EOF, `)`, … — `1.` is a float
            };
            if is_fraction {
                float = true;
                c.bump();
                c.eat_while(|b| b.is_ascii_digit() || b == b'_');
            }
        }
        // Exponent.
        if matches!(c.peek(), Some(b'e') | Some(b'E')) {
            let (a1, a2) = (c.peek_at(1), c.peek_at(2));
            let exp = match a1 {
                Some(bb) if bb.is_ascii_digit() => true,
                Some(b'+') | Some(b'-') => a2.is_some_and(|d| d.is_ascii_digit()),
                _ => false,
            };
            if exp {
                float = true;
                c.bump(); // e
                if matches!(c.peek(), Some(b'+') | Some(b'-')) {
                    c.bump();
                }
                c.eat_while(|b| b.is_ascii_digit() || b == b'_');
            }
        }
        // Suffix (`f64`, `u32`, …) — an `f` suffix makes it a float.
        if c.peek().is_some_and(is_ident_start) {
            let sstart = c.pos;
            c.eat_while(is_ident_continue);
            if c.src[sstart] == b'f' {
                float = true;
            }
        }
    }
    out.toks.push(Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
        line,
        col,
    });
}

/// Multi-character operators, longest match first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "->", "=>", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn lex_punct(c: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let rest = &c.src[c.pos..];
    for p in PUNCTS {
        if rest.starts_with(p.as_bytes()) {
            for _ in 0..p.len() {
                c.bump();
            }
            out.toks.push(Tok { kind: TokKind::Punct, text: (*p).to_string(), line, col });
            return;
        }
    }
    let b = c.bump().unwrap_or(b' ');
    out.toks.push(Tok {
        kind: TokKind::Punct,
        text: (b as char).to_string(),
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "Instant::now and unwrap()";"#);
        assert_eq!(idents(r#"let s = "Instant::now and unwrap()";"#), vec!["let", "s"]);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_any_hash_count() {
        assert_eq!(idents(r###"let s = r#"quote " inside"#; x"###), vec!["let", "s", "x"]);
        assert_eq!(idents("let s = br\"bytes\"; y"), vec!["let", "s", "y"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("// unwrap() here\nlet x = 1; /* nested /* block */ done */ let y = 2;");
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Ident).count(),
            4 // let x let y
        );
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
        assert!(l.comments[1].text.contains("done"));
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(c: char) { let q = '\\''; let d = '\"'; let l: &'a str = x; }");
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        let lifetimes: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(chars, 2, "'\\'' and '\"' are char literals");
        assert_eq!(lifetimes, ["a", "a"]);
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let l = lex("let a = 1.0; let b = 1e-6; let c = 0x1e5; let d = 1..n; let e = 2.; f(3f64)");
        let kinds: Vec<(TokKind, String)> = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokKind::Float, "1.0".to_string()),
                (TokKind::Float, "1e-6".to_string()),
                (TokKind::Int, "0x1e5".to_string()),
                (TokKind::Int, "1".to_string()),
                (TokKind::Float, "2.".to_string()),
                (TokKind::Float, "3f64".to_string()),
            ]
        );
    }

    #[test]
    fn method_call_on_int_is_not_a_float() {
        let l = lex("let x = 1.max(2);");
        let nums: Vec<_> = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .collect();
        assert_eq!(nums[0].kind, TokKind::Int);
    }

    #[test]
    fn multi_char_operators() {
        let texts: Vec<String> = lex("a == b != c :: d ..= e")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["==", "!=", "::", "..="]);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("ab\n  cd");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }
}
