//! archline-lint: workspace-native static analysis.
//!
//! Six token-level passes enforce the invariants the compiler cannot see:
//! no raw prints in library code, determinism of seeded result paths,
//! panic discipline in catch_unwind-clean hot paths, float-comparison and
//! mul_add discipline, and audited `unsafe` / atomic-ordering sites.
//! Policy is path-derived ([`policy`]), waivers are written pragmas with
//! mandatory justifications ([`pragma`]), and every diagnostic prints the
//! policy provenance that put the file in scope.
//!
//! The crate is dependency-free by design: it must build instantly,
//! offline, before anything else in the workspace compiles.

pub mod lexer;
pub mod passes;
pub mod policy;
pub mod pragma;

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

use lexer::{Tok, TokKind};
use policy::{FileClass, Pass};

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// The pass that produced it.
    pub pass: Pass,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (UTF-8 scalar values).
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Why this file is in scope for this pass (policy provenance).
    pub policy: String,
}

/// A lexed file plus the derived facts the passes consume.
pub struct SourceFile {
    pub class: FileClass,
    pub toks: Vec<Tok>,
    /// Parallel to `toks`: inside a `#[test]` fn or `#[cfg(test)]` region.
    pub in_test: Vec<bool>,
    /// Comment text per line (block comments contribute one entry per line
    /// they span).
    pub comment_lines: BTreeMap<u32, Vec<String>>,
    /// Like `comment_lines` but from non-doc comments only: pragmas live in
    /// regular `//` / `/* */` comments; doc comments are rendered prose, so
    /// a grammar example in documentation is never parsed as a pragma.
    pragma_lines: BTreeMap<u32, Vec<String>>,
    /// Lines holding at least one code token.
    code_lines: BTreeSet<u32>,
}

/// `///`, `//!`, `/**`, `/*!` start doc comments.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

impl SourceFile {
    pub fn new(rel: &str, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let in_test = mark_test_regions(&lexed.toks);
        let mut comment_lines: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        let mut pragma_lines: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for c in &lexed.comments {
            let doc = is_doc_comment(&c.text);
            for (off, line_text) in c.text.split('\n').enumerate() {
                let line = c.line + off as u32;
                comment_lines.entry(line).or_default().push(line_text.to_string());
                if !doc {
                    pragma_lines.entry(line).or_default().push(line_text.to_string());
                }
            }
        }
        let code_lines = lexed.toks.iter().map(|t| t.line).collect();
        SourceFile {
            class: FileClass::classify(rel),
            toks: lexed.toks,
            in_test,
            comment_lines,
            pragma_lines,
            code_lines,
        }
    }

    fn code_on_line(&self, line: u32) -> bool {
        self.code_lines.contains(&line)
    }

    fn next_code_line(&self, line: u32) -> Option<u32> {
        self.code_lines.range(line + 1..).next().copied()
    }
}

/// Marks token spans governed by a test attribute: any `#[...]` whose
/// ident list contains `test` or `bench` (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`) puts the next brace-balanced `{...}` region —
/// the test fn or `mod tests` body — out of scope for behavioral passes.
/// A `;` before the opening brace cancels the region (attribute on a
/// declaration with no body).
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        let is_attr_start = toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Punct && t.text == "[");
        if !is_attr_start {
            i += 1;
            continue;
        }
        // Find the attribute's closing `]`, noting any `test`/`bench` ident.
        let mut j = i + 2;
        let mut depth = 1u32;
        let mut is_test_attr = false;
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && (t.text == "test" || t.text == "bench") {
                is_test_attr = true;
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // The governed region: from the next `{` (unless a `;` intervenes)
        // to its matching `}`.
        let mut k = j;
        let mut start = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    start = Some(k);
                    break;
                }
                if t.text == ";" {
                    break;
                }
            }
            k += 1;
        }
        let Some(start) = start else {
            i = j;
            continue;
        };
        let mut braces = 0u32;
        let mut end = start;
        while end < toks.len() {
            let t = &toks[end];
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    braces += 1;
                } else if t.text == "}" {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
            }
            end += 1;
        }
        let end = end.min(toks.len() - 1);
        for flag in &mut in_test[i..=end] {
            *flag = true;
        }
        // Resume after the attribute itself: nested test attributes inside
        // the region re-mark harmlessly.
        i = j;
    }
    in_test
}

/// Lints one file's source under its path-derived policy. `rel` must be
/// workspace-relative with `/` separators — fixtures pass virtual paths
/// here to pin files into a chosen policy scope.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let file = SourceFile::new(rel, src);

    // Pragmas first: they waive pass findings and are themselves linted.
    let mut pragmas = Vec::new();
    let mut problems = Vec::new();
    for (line, texts) in &file.pragma_lines {
        // comment_lines is already split per line; parse each line's text
        // independently (a block comment contributes its pieces line by
        // line, so positions stay exact).
        for text in texts {
            pragma::parse_comment(
                text,
                *line,
                &|l| file.code_on_line(l),
                &|l| file.next_code_line(l),
                &mut pragmas,
                &mut problems,
            );
        }
    }

    let mut raw = Vec::new();
    for pass in Pass::ALL {
        if let Some(provenance) = policy::scope(pass, &file.class) {
            passes::run_pass(pass, &file, &provenance, &mut raw);
        }
    }

    // Waive: a pragma covers all findings of its pass on its target line.
    let mut used = vec![false; pragmas.len()];
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let waived = pragmas.iter().enumerate().any(|(pi, p)| {
                let hit = p.pass == f.pass && p.target_line == f.line;
                if hit {
                    used[pi] = true;
                }
                hit
            });
            !waived
        })
        .collect();

    let pragma_policy = policy::scope(Pass::Pragma, &file.class).unwrap_or_default();
    for p in &problems {
        findings.push(Finding {
            file: String::new(),
            pass: Pass::Pragma,
            line: p.line,
            col: 1,
            message: p.message.clone(),
            policy: pragma_policy.clone(),
        });
    }
    for (pi, p) in pragmas.iter().enumerate() {
        if !used[pi] {
            findings.push(Finding {
                file: String::new(),
                pass: Pass::Pragma,
                line: p.at_line,
                col: 1,
                message: format!(
                    "pragma for `{}` waives nothing on line {} — the finding it covered \
                     is gone; remove the pragma",
                    p.pass.name(),
                    p.target_line
                ),
                policy: pragma_policy.clone(),
            });
        }
    }

    for f in &mut findings {
        f.file = rel.to_string();
    }
    findings.sort_by(|a, b| (a.line, a.col, a.pass.name()).cmp(&(b.line, b.col, b.pass.name())));
    findings
}

/// Directory names never descended into. `fixtures` holds deliberately
/// dirty lint-test inputs; the rest are build/VCS/vendored trees.
const SKIP_DIRS: &[&str] = &["target", ".git", ".devstubs", "fixtures", "node_modules"];

/// All workspace `.rs` files under `root`, sorted, workspace-relative.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace file. Returns `(files_checked, findings)`;
/// findings are sorted by path, then position.
pub fn lint_workspace(root: &Path) -> io::Result<(usize, Vec<Finding>)> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(path)?;
        findings.extend(lint_source(&rel, &src));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.pass.name())
            .cmp(&(b.file.as_str(), b.line, b.col, b.pass.name()))
    });
    Ok((files.len(), findings))
}

/// Serializes findings as a JSON report (hand-rolled: the crate is
/// dependency-free).
pub fn to_json(files_checked: usize, findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_checked\": {files_checked},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": \"{}\", ", json_escape(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"col\": {}, ", f.col));
        out.push_str(&format!("\"pass\": \"{}\", ", f.pass.name()));
        out.push_str(&format!("\"message\": \"{}\", ", json_escape(&f.message)));
        out.push_str(&format!("\"policy\": \"{}\"", json_escape(&f.policy)));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_marked() {
        let src = r#"
fn hot() { let x = 1; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { v.unwrap(); }
}
"#;
        let f = SourceFile::new("crates/serve/src/server.rs", src);
        let unwrap_idx = f
            .toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token present");
        assert!(f.in_test[unwrap_idx]);
        let hot_idx = f.toks.iter().position(|t| t.text == "hot").expect("hot fn");
        assert!(!f.in_test[hot_idx]);
    }

    #[test]
    fn attribute_with_semicolon_governs_nothing() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x.unwrap(); }\n";
        let f = SourceFile::new("crates/par/src/executor.rs", src);
        let idx = f.toks.iter().position(|t| t.text == "unwrap").expect("unwrap");
        assert!(!f.in_test[idx], "region after `;`-terminated item must stay live");
    }

    #[test]
    fn pragma_waives_exactly_its_line_and_pass() {
        let src = r#"
fn f(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic-discipline, reason = "upheld by admission-time validation")
}
"#;
        let findings = lint_source("crates/serve/src/server.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unused_pragma_is_reported() {
        let src = r#"
fn f() -> u32 {
    // lint:allow(panic-discipline, reason = "left behind after a refactor")
    42
}
"#;
        let findings = lint_source("crates/serve/src/server.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].pass, Pass::Pragma);
        assert!(findings[0].message.contains("waives nothing"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let findings = vec![Finding {
            file: "crates/x/src/lib.rs".into(),
            pass: Pass::Determinism,
            line: 3,
            col: 9,
            message: "a \"quoted\" message".into(),
            policy: "p".into(),
        }];
        let json = to_json(10, &findings);
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains("a \\\"quoted\\\" message"));
    }
}
