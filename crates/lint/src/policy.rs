//! File-scoped policy: which pass applies where, and why.
//!
//! Policy is **path-derived**, not configured: the workspace layout is the
//! configuration. Every in-scope decision carries a provenance string that
//! is printed with the finding, so a diagnostic always says which rule of
//! which policy put the file in scope (see `docs/lint.md` for the full
//! policy map and the rationale for each exemption).

/// The lint passes. Order here is report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Raw `print!`/`println!`/`eprint!`/`eprintln!`/`dbg!` in library code.
    NoRawPrint,
    /// Wall-clock, entropy, and unordered-map constructs in seeded result
    /// paths.
    Determinism,
    /// `unwrap`/`expect`/`panic!`-family/indexing-by-literal in
    /// catch_unwind-clean hot paths.
    PanicDiscipline,
    /// Float `==`/`!=` against non-zero literals; bare `a*b + c` shapes in
    /// kernel files where the `mul_add` discipline applies.
    FloatDiscipline,
    /// `unsafe` without an adjacent `// SAFETY:` justification.
    UnsafeAudit,
    /// `Ordering::…` without an adjacent `// ordering:` justification.
    AtomicsAudit,
    /// Pragma hygiene: malformed/unknown/reason-less/unused
    /// `lint:allow` pragmas. Not waivable (a pragma cannot waive itself).
    Pragma,
}

impl Pass {
    /// All real passes (excludes the pragma-hygiene meta pass).
    pub const ALL: [Pass; 6] = [
        Pass::NoRawPrint,
        Pass::Determinism,
        Pass::PanicDiscipline,
        Pass::FloatDiscipline,
        Pass::UnsafeAudit,
        Pass::AtomicsAudit,
    ];

    /// The stable name used in diagnostics and `lint:allow(...)` pragmas.
    pub fn name(self) -> &'static str {
        match self {
            Pass::NoRawPrint => "no-raw-print",
            Pass::Determinism => "determinism",
            Pass::PanicDiscipline => "panic-discipline",
            Pass::FloatDiscipline => "float-discipline",
            Pass::UnsafeAudit => "unsafe-audit",
            Pass::AtomicsAudit => "atomics-audit",
            Pass::Pragma => "pragma",
        }
    }

    /// Parses a pragma pass name.
    pub fn from_name(name: &str) -> Option<Pass> {
        Pass::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// What the path alone says about a file. Paths are workspace-relative
/// with `/` separators.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Workspace-relative path.
    pub rel: String,
    /// `crates/<name>/…` → `Some(name)`; the root package's `src/` and
    /// `tests/` → `None`.
    pub crate_name: Option<String>,
    /// Binary frontend: owns its stdout, runs once per invocation.
    pub is_bin: bool,
    /// Integration tests / benches / examples: exercised, not shipped.
    pub is_testish: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (must use `/` separators).
    pub fn classify(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = match parts.as_slice() {
            ["crates", name, ..] => Some((*name).to_string()),
            _ => None,
        };
        let is_bin = parts.contains(&"bin")
            || parts.contains(&"examples")
            || rel.ends_with("src/main.rs");
        let is_testish = parts.contains(&"tests") || parts.contains(&"benches");
        FileClass { rel: rel.to_string(), crate_name, is_bin, is_testish }
    }

    fn krate(&self) -> &str {
        self.crate_name.as_deref().unwrap_or("")
    }
}

/// Crates whose library code is a seeded result path: model arithmetic,
/// fitting, statistics, platform tables, the simulator, fault injection
/// (seeded by contract), and the repro artifact layer. Wall-clock and
/// entropy anywhere here silently breaks bit-reproducibility.
///
/// Deliberately absent, with rationale (mirrored in `docs/lint.md`):
/// `obs` (monotonic span timing is its job), `microbench` (it *measures*
/// wall time), `powermon` (hardware counter sampling), `serve` (deadline
/// clocks are wall-clock by design), `bench`, `lint`.
const DETERMINISM_CRATES: &[&str] =
    &["core", "stats", "fit", "platforms", "machine", "faults", "repro", "par"];

/// Crates whose non-test code must justify every atomic ordering: the
/// executor, the observability substrate, and the serving layer are the
/// only places concurrency invariants live.
const ATOMICS_CRATES: &[&str] = &["par", "obs", "serve"];

/// Hot paths that must stay panic-free by construction: the serve shard
/// workers and the par executor/scope layer, whose `catch_unwind`
/// isolation is a typed-error contract, not a panic dumping ground.
const PANIC_CRATES: &[&str] = &["serve", "par"];

/// The one raw-print exemption: the obs stderr sink IS the print.
const PRINT_SINK: &str = "crates/obs/src/sink.rs";

/// Kernel files where the `mul_add` discipline applies (module docs of
/// `plan.rs` define the canonical-form / ULP policy).
const FMA_KERNEL_FILES: &[&str] = &["crates/core/src/plan.rs"];

/// Whether `pass` applies to `file`, and the policy provenance if so.
/// Token-level exemptions (test regions, `== 0.0` sentinels) are applied
/// by the passes themselves.
pub fn scope(pass: Pass, file: &FileClass) -> Option<String> {
    match pass {
        Pass::NoRawPrint => {
            if file.is_bin || file.is_testish || file.rel == PRINT_SINK {
                return None;
            }
            // Library sources only: root src/ or crates/*/src/.
            let lib = file.rel.starts_with("src/") || file.rel.contains("/src/");
            lib.then(|| {
                "library code logs through archline-obs; raw prints bypass the level \
                 gate, the JSONL trace, and -q/--verbose"
                    .to_string()
            })
        }
        Pass::Determinism => {
            if file.is_bin || file.is_testish {
                return None;
            }
            let in_scope = DETERMINISM_CRATES.contains(&file.krate())
                || file.rel.starts_with("src/");
            in_scope.then(|| {
                format!(
                    "seeded result path ({}): RNG streams and fits must stay bit-identical \
                     across runs",
                    file.crate_name.as_deref().unwrap_or("root lib")
                )
            })
        }
        Pass::PanicDiscipline => {
            if file.is_bin || file.is_testish {
                return None;
            }
            PANIC_CRATES.contains(&file.krate()).then(|| {
                format!(
                    "catch_unwind-clean hot path (crate {}): panics here are typed-error \
                     contract violations, not isolation fodder",
                    file.krate()
                )
            })
        }
        Pass::FloatDiscipline => {
            if file.is_testish || file.krate() == "stats" {
                return None;
            }
            Some(
                "float equality is exact only for propagated literals; computed values \
                 need approx comparison (stats/tests are approved modules)"
                    .to_string(),
            )
        }
        Pass::UnsafeAudit => Some(
            "every unsafe block/impl carries an adjacent // SAFETY: argument \
             (workspace-wide)"
                .to_string(),
        ),
        Pass::AtomicsAudit => {
            if file.is_testish {
                return None;
            }
            ATOMICS_CRATES.contains(&file.krate()).then(|| {
                format!(
                    "concurrency layer (crate {}): every Ordering choice carries an \
                     adjacent // ordering: justification",
                    file.krate()
                )
            })
        }
        Pass::Pragma => Some("pragma hygiene (everywhere)".to_string()),
    }
}

/// Whether the fma sub-rule of float-discipline applies to this file.
pub fn fma_kernel_file(file: &FileClass) -> bool {
    FMA_KERNEL_FILES.contains(&file.rel.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(rel: &str) -> FileClass {
        FileClass::classify(rel)
    }

    #[test]
    fn bins_and_tests_are_classified() {
        assert!(class("crates/repro/src/bin/repro.rs").is_bin);
        assert!(class("src/main.rs").is_bin);
        assert!(class("examples/quickstart.rs").is_bin);
        assert!(class("tests/chaos.rs").is_testish);
        assert!(class("crates/lint/tests/fixtures.rs").is_testish);
        let lib = class("crates/core/src/plan.rs");
        assert!(!lib.is_bin && !lib.is_testish);
        assert_eq!(lib.crate_name.as_deref(), Some("core"));
    }

    #[test]
    fn print_policy_exempts_bins_and_the_sink() {
        assert!(scope(Pass::NoRawPrint, &class("crates/fit/src/pipeline.rs")).is_some());
        assert!(scope(Pass::NoRawPrint, &class("crates/obs/src/sink.rs")).is_none());
        assert!(scope(Pass::NoRawPrint, &class("crates/repro/src/bin/repro.rs")).is_none());
        assert!(scope(Pass::NoRawPrint, &class("crates/serve/src/bin/archline-serve.rs")).is_none());
    }

    #[test]
    fn determinism_covers_result_paths_only() {
        assert!(scope(Pass::Determinism, &class("crates/core/src/model.rs")).is_some());
        assert!(scope(Pass::Determinism, &class("src/prelude.rs")).is_some());
        assert!(scope(Pass::Determinism, &class("crates/obs/src/span.rs")).is_none());
        assert!(scope(Pass::Determinism, &class("crates/serve/src/server.rs")).is_none());
        assert!(scope(Pass::Determinism, &class("crates/microbench/src/timer.rs")).is_none());
        assert!(scope(Pass::Determinism, &class("crates/powermon/src/rapl.rs")).is_none());
    }

    #[test]
    fn panic_and_atomics_cover_the_concurrency_layer() {
        assert!(scope(Pass::PanicDiscipline, &class("crates/serve/src/server.rs")).is_some());
        assert!(scope(Pass::PanicDiscipline, &class("crates/par/src/executor.rs")).is_some());
        assert!(scope(Pass::PanicDiscipline, &class("crates/fit/src/pipeline.rs")).is_none());
        assert!(scope(Pass::AtomicsAudit, &class("crates/obs/src/metrics.rs")).is_some());
        assert!(scope(Pass::AtomicsAudit, &class("crates/repro/src/context.rs")).is_none());
    }

    #[test]
    fn float_policy_approves_stats_and_tests() {
        assert!(scope(Pass::FloatDiscipline, &class("crates/repro/src/fig6.rs")).is_some());
        assert!(scope(Pass::FloatDiscipline, &class("crates/stats/src/ks.rs")).is_none());
        assert!(scope(Pass::FloatDiscipline, &class("tests/paper_claims.rs")).is_none());
        assert!(fma_kernel_file(&class("crates/core/src/plan.rs")));
        assert!(!fma_kernel_file(&class("crates/core/src/model.rs")));
    }
}
