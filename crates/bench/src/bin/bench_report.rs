//! `bench_report` — measures the batch-evaluation speedups and writes
//! `BENCH_model.json` (schema v5, see [`archline_bench::BENCH_SCHEMA_VERSION`])
//! into the current directory (the repo root in CI).
//!
//! Per batch kernel (`avg_power`, `time_energy`, the fused `evaluate`,
//! `perf`, `energy_eff`), three measurements bracket the claim over the
//! same 10⁶-point log-spaced sweep:
//! - `scalar`: today's per-point plan-backed calls (inputs `black_box`ed per
//!   call, so the compiler cannot turn the baseline loop into the batch
//!   kernel);
//! - `batch`: the serial SoA lane kernel;
//! - `batch_par`: the adaptive-grain executor path (identical code to
//!   `batch` when one worker).
//!
//! The headline `speedup_batch_vs_scalar` is the fused `evaluate` sweep —
//! the shape the fit objective and the figure artifacts actually run — not
//! the underived-baseline ratio (still recorded as
//! `speedup_batch_vs_scalar_underived` for continuity with schema v2).
//! The GEMM section measures the branchless blocked SGEMM *and* the seed's
//! branchy zero-skip variant from the same workspace so a regression in
//! either direction stays visible.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use archline_bench::{prior_schema_warning, BENCH_SCHEMA_VERSION};
use archline_serve::{Phases, Query, Request, ServeConfig, Server};
use archline_core::{plan::PAR_THRESHOLD, EnergyRoofline, MachineParams, Regime};
use archline_fit::{try_fit_platform, FitOptions};
use archline_machine::{spec_for, Engine};
use archline_microbench::{gemm_bench_with, run_suite, GemmWorkspace, SweepConfig};
use archline_obs as obs;
use archline_par::{adaptive_grain, num_threads};
use archline_platforms::{platform, PlatformId, Precision};

const SWEEP_POINTS: usize = 1_000_000;

/// Points per call for the L2-resident `evaluate_cached` sweep. Divides
/// `SWEEP_POINTS` exactly (64 calls per timed rep) and is deliberately not a
/// power of two so the remainder lanes run too.
const CACHED_POINTS: usize = 15_625;

fn grid(n: usize) -> Vec<f64> {
    let (lo, hi) = (0.01f64, 1e4f64);
    let step = (hi / lo).ln() / (n - 1) as f64;
    (0..n).map(|k| lo * (step * k as f64).exp()).collect()
}

/// Replica of the pre-plan `avg_power_at`: balance points and pipeline
/// powers re-derived per call, as the seed's scalar model did. Never
/// inlined — the seed's consumers (the `dyn Fn` sweeps in fig1, the
/// per-candidate fit objectives) paid the full derivation on every call,
/// so the baseline must not let LICM amortize it across the loop.
#[inline(never)]
fn avg_power_underived(p: &MachineParams, intensity: f64) -> f64 {
    let b = p.balances();
    let pi_f = p.flop_power();
    let pi_m = p.mem_power();
    let b_tau = b.time;
    p.const_power
        + if intensity >= b.upper {
            pi_f + if intensity.is_infinite() { 0.0 } else { pi_m * b_tau / intensity }
        } else if intensity <= b.lower {
            pi_m + pi_f * intensity / b_tau
        } else {
            p.cap.watts()
        }
}

/// Measured streaming bandwidth of this machine, GB/s: best-of-`reps` fused
/// triad (`o = fma(a, 1.5, b)`, 24 bytes of traffic per point) over the
/// sweep-sized buffers. The multi-output batch kernels run at DRAM speed,
/// not ALU speed, at 10⁶ points — this field is the ceiling to read their
/// throughputs against (see EXPERIMENTS.md, "Kernel optimization").
fn streaming_bw_gbps(reps: usize, a: &[f64], b: &[f64], out: &mut [f64]) -> f64 {
    let secs = best_secs(reps, || {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x.mul_add(1.5, y);
        }
        black_box(&out);
    });
    24.0 * a.len() as f64 / secs / 1e9
}

/// Best-of-`reps` wall time of `f`, seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn mpts(n: usize, secs: f64) -> f64 {
    n as f64 / secs / 1e6
}

/// One kernel's scalar/batch/batch_par timings (best-of seconds).
struct Sweep {
    scalar: f64,
    batch: f64,
    batch_par: f64,
}

impl Sweep {
    fn write_json(&self, json: &mut String, name: &str, trailing_comma: bool) {
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(json, "      \"scalar_mpts_per_sec\": {:.3},", mpts(SWEEP_POINTS, self.scalar));
        let _ = writeln!(json, "      \"batch_mpts_per_sec\": {:.3},", mpts(SWEEP_POINTS, self.batch));
        let _ = writeln!(
            json,
            "      \"batch_par_mpts_per_sec\": {:.3},",
            mpts(SWEEP_POINTS, self.batch_par)
        );
        let _ = writeln!(json, "      \"speedup_batch_vs_scalar\": {:.3},", self.scalar / self.batch);
        let _ = writeln!(
            json,
            "      \"speedup_batch_par_vs_batch\": {:.3}",
            self.batch / self.batch_par
        );
        let _ = writeln!(json, "    }}{}", if trailing_comma { "," } else { "" });
    }
}

/// Platforms the serve benchmarks spread their clients across, the way a
/// mixed query stream would.
const SERVE_PLATFORMS: [&str; 4] = ["GTX Titan", "Desktop CPU", "NUC CPU", "GTX 680"];

/// Points per serve-bench eval query.
const SERVE_EVAL_POINTS: usize = 64;

fn serve_request(id: u64, platform: &str) -> Request {
    Request {
        id,
        platform: platform.to_string(),
        double_precision: false,
        cap: None,
        deadline_ms: None,
        trace: None,
        query: Query::Eval {
            flops: (1..=SERVE_EVAL_POINTS).map(|i| 1e9 * i as f64).collect(),
            bytes: (1..=SERVE_EVAL_POINTS).map(|i| 2e8 * i as f64).collect(),
        },
    }
}

/// p50/p99 of one telemetry phase across a run's responses (µs).
struct PhasePct {
    p50: f64,
    p99: f64,
}

/// Per-phase latency decomposition from the responses' `phases_us`
/// envelope (schema v6). The serialize phase is wire-level and absent
/// from the in-process API, so the breakdown stops at `total`.
struct PhaseBreakdown {
    queue: PhasePct,
    window: PhasePct,
    kernel: PhasePct,
    total: PhasePct,
}

impl PhaseBreakdown {
    fn from_samples(phases: &[Phases]) -> Option<PhaseBreakdown> {
        if phases.is_empty() {
            return None;
        }
        let pcts = |mut v: Vec<u64>| {
            v.sort_unstable();
            let at = |p: f64| v[((v.len() - 1) as f64 * p) as usize] as f64;
            PhasePct { p50: at(0.50), p99: at(0.99) }
        };
        Some(PhaseBreakdown {
            queue: pcts(phases.iter().map(|p| p.queue_us).collect()),
            window: pcts(phases.iter().map(|p| p.window_us).collect()),
            kernel: pcts(phases.iter().map(|p| p.kernel_us).collect()),
            total: pcts(phases.iter().map(|p| p.total_us).collect()),
        })
    }
}

/// One closed-loop run's numbers.
struct ClosedLoop {
    clients: usize,
    depth: usize,
    queries: usize,
    queries_per_sec: f64,
    latency_p50_us: f64,
    latency_p99_us: f64,
    mean_batch_occupancy: f64,
    window_holds: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    plan_cache_evictions: u64,
    plan_cache_hit_rate: f64,
    phases: Option<PhaseBreakdown>,
}

/// One arrival rate of the open-loop sweep.
struct OpenLoopPoint {
    offered_qps: f64,
    achieved_qps: f64,
    mean_batch_occupancy: f64,
    latency_p99_us: f64,
    shed_rate: f64,
}

/// What the in-process archline-serve engine measures for the report.
struct ServeBench {
    headline: ClosedLoop,
    depth1: ClosedLoop,
    open_loop: Vec<OpenLoopPoint>,
    overload_submitted: usize,
    overload_shed: u64,
}

/// Closed-loop clients, each keeping `depth` requests in flight (pipelined
/// submit-then-drain bursts). `depth = 1` is the strict one-at-a-time mode
/// schema v4 reported; deeper pipelines are what give the admission window
/// something to coalesce.
fn serve_closed_loop(clients: usize, depth: usize, queries_per_client: usize) -> ClosedLoop {
    let server = Server::start(ServeConfig::default()).expect("serve engine");
    let handle = server.handle();
    let start = Instant::now();
    let (mut latencies, phase_samples): (Vec<u64>, Vec<Phases>) = std::thread::scope(|s| {
        let threads: Vec<_> = (0..clients)
            .map(|c| {
                let handle = handle.clone();
                let platform = SERVE_PLATFORMS[c % SERVE_PLATFORMS.len()];
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(queries_per_client);
                    let mut phases = Vec::with_capacity(queries_per_client);
                    let mut q = 0;
                    while q < queries_per_client {
                        let burst = depth.min(queries_per_client - q);
                        let pending: Vec<(Instant, _)> = (0..burst)
                            .map(|i| {
                                let id = (c * queries_per_client + q + i) as u64;
                                (Instant::now(), handle.submit(serve_request(id, platform)))
                            })
                            .collect();
                        for (t0, t) in pending {
                            let resp = t.wait();
                            assert!(resp.result.is_ok(), "bench query rejected: {:?}", resp.result);
                            lat.push(t0.elapsed().as_micros() as u64);
                            if let Some(ph) = resp.phases {
                                phases.push(ph);
                            }
                        }
                        q += burst;
                    }
                    (lat, phases)
                })
            })
            .collect();
        let mut all_lat = Vec::new();
        let mut all_phases = Vec::new();
        for t in threads {
            let (lat, phases) = t.join().expect("client thread");
            all_lat.extend(lat);
            all_phases.extend(phases);
        }
        (all_lat, all_phases)
    });
    let secs = start.elapsed().as_secs_f64();
    let after = server.shutdown();
    let stats = after.stats();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] as f64;
    let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    ClosedLoop {
        clients,
        depth,
        queries: clients * queries_per_client,
        queries_per_sec: (clients * queries_per_client) as f64 / secs,
        latency_p50_us: pct(0.50),
        latency_p99_us: pct(0.99),
        mean_batch_occupancy: stats.mean_batch_occupancy(),
        window_holds: load(&stats.window_holds),
        plan_cache_hits: load(&stats.plan_cache_hits),
        plan_cache_misses: load(&stats.plan_cache_misses),
        plan_cache_evictions: load(&stats.plan_cache_evictions),
        plan_cache_hit_rate: stats.plan_cache_hit_rate(),
        phases: PhaseBreakdown::from_samples(&phase_samples),
    }
}

/// Open loop at a fixed arrival rate: a submitter paces bursts on a 1 ms
/// tick regardless of completions (so queueing, shedding, and deadline
/// pressure are the system's problem, not the client's), while a collector
/// drains tickets in submission order. Reported latency is client-observed
/// (submit to collected answer) — an honest upper bound under pipelining.
fn serve_open_loop(rate: f64) -> OpenLoopPoint {
    const TICK: Duration = Duration::from_millis(1);
    const DURATION_SECS: f64 = 0.4;
    let server = Server::start(ServeConfig::default()).expect("serve engine");
    let handle = server.handle();
    let total = (rate * DURATION_SECS) as usize;
    let per_tick = ((rate * TICK.as_secs_f64()) as usize).max(1);
    let (tx, rx) = std::sync::mpsc::channel();
    let start = Instant::now();
    let (completed, mut latencies): (u64, Vec<u64>) = std::thread::scope(|s| {
        let submit_handle = handle.clone();
        s.spawn(move || {
            let mut sent = 0usize;
            let mut tick_idx = 0u32;
            while sent < total {
                let burst = per_tick.min(total - sent);
                for i in 0..burst {
                    let id = (sent + i) as u64;
                    let platform = SERVE_PLATFORMS[(sent + i) % SERVE_PLATFORMS.len()];
                    let ticket = submit_handle.submit(serve_request(id, platform));
                    if tx.send((Instant::now(), ticket)).is_err() {
                        return;
                    }
                }
                sent += burst;
                tick_idx += 1;
                if let Some(d) =
                    (start + TICK * tick_idx).checked_duration_since(Instant::now())
                {
                    std::thread::sleep(d);
                }
            }
        });
        let mut completed = 0u64;
        let mut lat = Vec::with_capacity(total);
        for (t0, ticket) in rx {
            if ticket.wait().result.is_ok() {
                completed += 1;
                lat.push(t0.elapsed().as_micros() as u64);
            }
        }
        (completed, lat)
    });
    let secs = start.elapsed().as_secs_f64();
    let after = server.shutdown();
    let stats = after.stats();
    latencies.sort_unstable();
    let p99 = if latencies.is_empty() {
        0.0
    } else {
        latencies[((latencies.len() - 1) as f64 * 0.99) as usize] as f64
    };
    let shed = stats.shed.load(std::sync::atomic::Ordering::Relaxed);
    OpenLoopPoint {
        offered_qps: rate,
        achieved_qps: completed as f64 / secs,
        mean_batch_occupancy: stats.mean_batch_occupancy(),
        latency_p99_us: p99,
        shed_rate: shed as f64 / (total as f64).max(1.0),
    }
}

/// Drives an in-process archline-serve engine four ways: a pipelined
/// closed loop (the headline — concurrent load the admission window can
/// coalesce into wide kernel passes), the strict depth-1 closed loop
/// schema v4 reported (continuity), an open-loop arrival-rate sweep
/// (offered vs achieved qps through saturation), and a deliberate
/// overload burst against a small queue for the shed rate (a shed rate of
/// zero would mean admission control never engaged).
fn serve_bench() -> ServeBench {
    let headline = serve_closed_loop(4, 16, 16_000);
    let depth1 = serve_closed_loop(4, 1, 2_000);
    let open_loop = [50_000.0, 150_000.0, 450_000.0].iter().map(|&r| serve_open_loop(r)).collect();

    // Shed rate under deliberate overload (tiny queue, batch-of-1 worker,
    // un-paced burst).
    let overload = Server::start(ServeConfig {
        shards: 1,
        queue_bound: 32,
        max_batch: 1,
        ..ServeConfig::default()
    })
    .expect("overload engine");
    let ohandle = overload.handle();
    let submitted = 2_000;
    let tickets: Vec<_> =
        (0..submitted).map(|i| ohandle.submit(serve_request(i as u64, "Xeon Phi"))).collect();
    for t in tickets {
        let _ = t.wait();
    }
    let shed = overload.shutdown().stats().shed.load(std::sync::atomic::Ordering::Relaxed);

    ServeBench { headline, depth1, open_loop, overload_submitted: submitted, overload_shed: shed }
}

fn main() {
    obs::set_stderr_level(Some(obs::Level::Info));
    if let Err(e) = obs::init_from_env() {
        obs::error!("bench", "bench_report: {e}");
        std::process::exit(2);
    }

    let model = EnergyRoofline::new(
        platform(PlatformId::GtxTitan).machine_params(Precision::Single).expect("single"),
    );
    let params = *model.params();
    let plan = *model.plan();
    let n = SWEEP_POINTS;
    let xs = grid(n);
    // The (W, Q) view of the same sweep for the workload-space kernels:
    // fixed work, bytes from intensity.
    let flops: Vec<f64> = vec![1e9; n];
    let bytes: Vec<f64> = xs.iter().map(|&i| 1e9 / i).collect();
    let mut out = vec![0.0; n];
    let (mut t_buf, mut e_buf, mut p_buf) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    let mut r_buf = vec![Regime::MemoryBound; n];
    let reps = 7;

    obs::info!("bench", "bench_report: 10^6-point kernel sweeps ({reps} reps each)...");
    let bw_gbps = streaming_bw_gbps(reps, &flops, &bytes, &mut out);
    let t_underived = best_secs(reps, || {
        for (o, &x) in out.iter_mut().zip(&xs) {
            *o = avg_power_underived(black_box(&params), black_box(x));
        }
        black_box(&out);
    });

    let avg_power = Sweep {
        scalar: best_secs(reps, || {
            for (o, &x) in out.iter_mut().zip(&xs) {
                *o = model.avg_power_at(black_box(x));
            }
            black_box(&out);
        }),
        batch: best_secs(reps, || {
            plan.avg_power_batch_serial(black_box(&xs), &mut out);
            black_box(&out);
        }),
        batch_par: best_secs(reps, || {
            plan.avg_power_batch(black_box(&xs), &mut out);
            black_box(&out);
        }),
    };

    let time_energy = Sweep {
        scalar: best_secs(reps, || {
            for k in 0..n {
                (t_buf[k], e_buf[k]) = plan.time_energy(black_box(flops[k]), black_box(bytes[k]));
            }
            black_box(&t_buf);
            black_box(&e_buf);
        }),
        batch: best_secs(reps, || {
            plan.time_energy_batch_serial(black_box(&flops), black_box(&bytes), &mut t_buf, &mut e_buf);
            black_box(&t_buf);
            black_box(&e_buf);
        }),
        batch_par: best_secs(reps, || {
            plan.time_energy_batch(black_box(&flops), black_box(&bytes), &mut t_buf, &mut e_buf);
            black_box(&t_buf);
            black_box(&e_buf);
        }),
    };

    let evaluate = Sweep {
        scalar: best_secs(reps, || {
            for k in 0..n {
                (t_buf[k], e_buf[k], p_buf[k], r_buf[k]) =
                    plan.evaluate(black_box(flops[k]), black_box(bytes[k]));
            }
            black_box(&t_buf);
            black_box(&e_buf);
            black_box(&p_buf);
            black_box(&r_buf);
        }),
        batch: best_secs(reps, || {
            plan.evaluate_batch_serial(
                black_box(&flops),
                black_box(&bytes),
                &mut t_buf,
                &mut e_buf,
                &mut p_buf,
                &mut r_buf,
            );
            black_box(&t_buf);
            black_box(&e_buf);
            black_box(&p_buf);
            black_box(&r_buf);
        }),
        batch_par: best_secs(reps, || {
            plan.evaluate_batch(
                black_box(&flops),
                black_box(&bytes),
                &mut t_buf,
                &mut e_buf,
                &mut p_buf,
                &mut r_buf,
            );
            black_box(&t_buf);
            black_box(&e_buf);
            black_box(&p_buf);
            black_box(&r_buf);
        }),
    };

    // L2-resident view of the fused kernel: same sweep shape at
    // `CACHED_POINTS` (6 streams ≈ 0.8 MB, inside a 1–2 MB L2), repeated so
    // each timed rep does `SWEEP_POINTS` of work. At 10⁶ points the fused
    // kernel is DRAM-bound and batch ≈ scalar (both sit at the streaming
    // wall — see `streaming_bw_gbps`); this sweep is the apples-to-apples
    // view of the kernel itself. Below `PAR_THRESHOLD`, so `batch_par`
    // degenerates to `batch` by design.
    let nc = CACHED_POINTS;
    let inner = SWEEP_POINTS / nc;
    let (fc, bc) = (&flops[..nc], &bytes[..nc]);
    let evaluate_cached = Sweep {
        scalar: best_secs(reps, || {
            for _ in 0..inner {
                for k in 0..nc {
                    (t_buf[k], e_buf[k], p_buf[k], r_buf[k]) =
                        plan.evaluate(black_box(fc[k]), black_box(bc[k]));
                }
                black_box(&t_buf);
                black_box(&e_buf);
                black_box(&p_buf);
                black_box(&r_buf);
            }
        }),
        batch: best_secs(reps, || {
            for _ in 0..inner {
                plan.evaluate_batch_serial(
                    black_box(fc),
                    black_box(bc),
                    &mut t_buf[..nc],
                    &mut e_buf[..nc],
                    &mut p_buf[..nc],
                    &mut r_buf[..nc],
                );
                black_box(&t_buf);
                black_box(&e_buf);
                black_box(&p_buf);
                black_box(&r_buf);
            }
        }),
        batch_par: best_secs(reps, || {
            for _ in 0..inner {
                plan.evaluate_batch(
                    black_box(fc),
                    black_box(bc),
                    &mut t_buf[..nc],
                    &mut e_buf[..nc],
                    &mut p_buf[..nc],
                    &mut r_buf[..nc],
                );
                black_box(&t_buf);
                black_box(&e_buf);
                black_box(&p_buf);
                black_box(&r_buf);
            }
        }),
    };

    let perf = Sweep {
        scalar: best_secs(reps, || {
            for (o, &x) in out.iter_mut().zip(&xs) {
                *o = model.perf_at(black_box(x));
            }
            black_box(&out);
        }),
        batch: best_secs(reps, || {
            plan.perf_batch_serial(black_box(&xs), &mut out);
            black_box(&out);
        }),
        batch_par: best_secs(reps, || {
            plan.perf_batch(black_box(&xs), &mut out);
            black_box(&out);
        }),
    };

    let energy_eff = Sweep {
        scalar: best_secs(reps, || {
            for (o, &x) in out.iter_mut().zip(&xs) {
                *o = model.energy_eff_at(black_box(x));
            }
            black_box(&out);
        }),
        batch: best_secs(reps, || {
            plan.energy_eff_batch_serial(black_box(&xs), &mut out);
            black_box(&out);
        }),
        batch_par: best_secs(reps, || {
            plan.energy_eff_batch(black_box(&xs), &mut out);
            black_box(&out);
        }),
    };

    obs::info!("bench", "bench_report: end-to-end fit_platform...");
    let spec = spec_for(&platform(PlatformId::ArndaleGpu), Precision::Single);
    let cfg = SweepConfig {
        points: 17,
        target_secs: 0.04,
        level_runs: 1,
        random_runs: 1,
        ..Default::default()
    };
    let suite = run_suite(&spec, &cfg, &Engine::default()).dram;
    let t_fit = best_secs(3, || {
        black_box(try_fit_platform(black_box(&suite), &FitOptions::default()).expect("fit"));
    });

    obs::info!("bench", "bench_report: blocked SGEMM (branchless vs branchy replica)...");
    let n_gemm = 256;
    let mut ws = GemmWorkspace::new(n_gemm);
    let branchless = gemm_bench_with(&mut ws, 64, 0.2);
    let branchy_secs = {
        let a: Vec<f32> = (0..n_gemm * n_gemm).map(|i| ((i % 101) as f32) * 0.01).collect();
        let b: Vec<f32> = (0..n_gemm * n_gemm).map(|i| ((i % 97) as f32) * 0.01).collect();
        let mut c = vec![0.0f32; n_gemm * n_gemm];
        // Warmup + best-of until 0.2 s, mirroring `time_kernel`.
        branchy_sgemm(&mut c, &a, &b, n_gemm, 64);
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        while total < 0.2 {
            c.fill(0.0);
            let start = Instant::now();
            branchy_sgemm(&mut c, &a, &b, n_gemm, 64);
            let dt = start.elapsed().as_secs_f64();
            black_box(&c);
            best = best.min(dt);
            total += dt;
        }
        best
    };
    let gflops = |secs: f64| 2.0 * (n_gemm as f64).powi(3) / secs / 1e9;

    obs::info!(
        "bench",
        "bench_report: archline-serve engine (pipelined + depth-1 closed loop, \
         open-loop rate sweep, overload burst)..."
    );
    let serve = serve_bench();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    if let Some(rev) = obs::git_revision() {
        let _ = writeln!(json, "  \"git_rev\": \"{rev}\",");
    }
    let _ = writeln!(json, "  \"sweep_points\": {SWEEP_POINTS},");
    let _ = writeln!(json, "  \"num_workers\": {},", num_threads());
    let _ = writeln!(json, "  \"par_grain\": {},", adaptive_grain(SWEEP_POINTS));
    let _ = writeln!(json, "  \"par_threshold\": {PAR_THRESHOLD},");
    let _ = writeln!(json, "  \"streaming_bw_gbps\": {bw_gbps:.1},");
    // Headline: the fused sweep the fit objective and artifacts actually
    // run, against the *derived* per-point scalar path.
    let _ = writeln!(
        json,
        "  \"speedup_batch_vs_scalar\": {:.3},",
        evaluate.scalar / evaluate.batch
    );
    let _ = writeln!(
        json,
        "  \"speedup_batch_par_vs_batch\": {:.3},",
        evaluate.batch / evaluate.batch_par
    );
    // The same fused kernel with its working set inside L2: what the kernel
    // does when DRAM is not the limiter (small fit suites, figure grids).
    let _ = writeln!(
        json,
        "  \"speedup_batch_vs_scalar_cached\": {:.3},",
        evaluate_cached.scalar / evaluate_cached.batch
    );
    let _ = writeln!(
        json,
        "  \"scalar_underived_mpts_per_sec\": {:.3},",
        mpts(SWEEP_POINTS, t_underived)
    );
    let _ = writeln!(
        json,
        "  \"speedup_batch_vs_scalar_underived\": {:.3},",
        t_underived / avg_power.batch
    );
    let _ = writeln!(json, "  \"kernel_sweeps\": {{");
    avg_power.write_json(&mut json, "avg_power", true);
    time_energy.write_json(&mut json, "time_energy", true);
    evaluate.write_json(&mut json, "evaluate", true);
    evaluate_cached.write_json(&mut json, "evaluate_cached", true);
    perf.write_json(&mut json, "perf", true);
    energy_eff.write_json(&mut json, "energy_eff", false);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fit_platform_ms\": {:.3},", t_fit * 1e3);
    let _ = writeln!(json, "  \"gemm_n{n_gemm}_block64\": {{");
    let _ = writeln!(json, "    \"branchy_gflops\": {:.3},", gflops(branchy_secs));
    let _ = writeln!(json, "    \"branchless_gflops\": {:.3}", branchless.gflops());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"serve\": {{");
    let h = &serve.headline;
    let _ = writeln!(json, "    \"clients\": {},", h.clients);
    let _ = writeln!(json, "    \"depth\": {},", h.depth);
    let _ = writeln!(json, "    \"queries\": {},", h.queries);
    let _ = writeln!(json, "    \"queries_per_sec\": {:.1},", h.queries_per_sec);
    let _ = writeln!(json, "    \"latency_p50_us\": {:.1},", h.latency_p50_us);
    let _ = writeln!(json, "    \"latency_p99_us\": {:.1},", h.latency_p99_us);
    let _ = writeln!(json, "    \"mean_batch_occupancy\": {:.3},", h.mean_batch_occupancy);
    let _ = writeln!(json, "    \"window_holds\": {},", h.window_holds);
    if let Some(ph) = &h.phases {
        let _ = writeln!(json, "    \"phases_us\": {{");
        let phase_rows: [(&str, &PhasePct); 4] = [
            ("queue", &ph.queue),
            ("window", &ph.window),
            ("kernel", &ph.kernel),
            ("total", &ph.total),
        ];
        for (i, (name, p)) in phase_rows.iter().enumerate() {
            let _ = writeln!(
                json,
                "      \"{name}\": {{\"p50\": {:.1}, \"p99\": {:.1}}}{}",
                p.p50,
                p.p99,
                if i == phase_rows.len() - 1 { "" } else { "," }
            );
        }
        let _ = writeln!(json, "    }},");
    }
    let _ = writeln!(json, "    \"plan_cache\": {{");
    let _ = writeln!(json, "      \"hits\": {},", h.plan_cache_hits);
    let _ = writeln!(json, "      \"misses\": {},", h.plan_cache_misses);
    let _ = writeln!(json, "      \"evictions\": {},", h.plan_cache_evictions);
    let _ = writeln!(json, "      \"hit_rate\": {:.6}", h.plan_cache_hit_rate);
    let _ = writeln!(json, "    }},");
    let d1 = &serve.depth1;
    let _ = writeln!(json, "    \"closed_loop_depth1\": {{");
    let _ = writeln!(json, "      \"clients\": {},", d1.clients);
    let _ = writeln!(json, "      \"queries\": {},", d1.queries);
    let _ = writeln!(json, "      \"queries_per_sec\": {:.1},", d1.queries_per_sec);
    let _ = writeln!(json, "      \"latency_p50_us\": {:.1},", d1.latency_p50_us);
    let _ = writeln!(json, "      \"latency_p99_us\": {:.1},", d1.latency_p99_us);
    let _ = writeln!(json, "      \"mean_batch_occupancy\": {:.3}", d1.mean_batch_occupancy);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"open_loop\": [");
    let last = serve.open_loop.len().saturating_sub(1);
    for (i, pt) in serve.open_loop.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"offered_qps\": {:.1},", pt.offered_qps);
        let _ = writeln!(json, "        \"achieved_qps\": {:.1},", pt.achieved_qps);
        let _ = writeln!(json, "        \"mean_batch_occupancy\": {:.3},", pt.mean_batch_occupancy);
        let _ = writeln!(json, "        \"latency_p99_us\": {:.1},", pt.latency_p99_us);
        let _ = writeln!(json, "        \"shed_rate\": {:.3}", pt.shed_rate);
        let _ = writeln!(json, "      }}{}", if i == last { "" } else { "," });
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"overload_submitted\": {},", serve.overload_submitted);
    let _ = writeln!(json, "    \"overload_shed\": {},", serve.overload_shed);
    let _ = writeln!(
        json,
        "    \"shed_rate\": {:.3}",
        serve.overload_shed as f64 / serve.overload_submitted as f64
    );
    let _ = writeln!(json, "  }},");
    // Final counter snapshot (obs writes well-formed JSON), so the report
    // records how much measured work stands behind the numbers above.
    json.push_str("  \"metrics\": ");
    obs::metrics::snapshot().write_json(&mut json);
    json.push_str("\n}\n");

    if let Ok(old) = std::fs::read_to_string("BENCH_model.json") {
        if let Some(w) = prior_schema_warning(&old, BENCH_SCHEMA_VERSION) {
            obs::warn!("bench", "bench_report: {w}");
        }
    }
    std::fs::write("BENCH_model.json", &json).expect("write BENCH_model.json");
    obs::info!("bench", "wrote BENCH_model.json");
    print!("{json}");
    obs::flush();
}

/// The seed's blocked SGEMM, zero-skip branch included — kept only so the
/// report can quantify what removing it bought.
fn branchy_sgemm(c: &mut [f32], a: &[f32], b: &[f32], n: usize, block: usize) {
    archline_par::parallel_chunks_mut(c, block * n, |panel_idx, c_panel| {
        let i0 = panel_idx * block;
        let rows = c_panel.len() / n;
        for k0 in (0..n).step_by(block) {
            let k_hi = (k0 + block).min(n);
            for j0 in (0..n).step_by(block) {
                let j_hi = (j0 + block).min(n);
                for di in 0..rows {
                    let i = i0 + di;
                    let c_row = &mut c_panel[di * n..(di + 1) * n];
                    for k in k0..k_hi {
                        let aik = a[i * n + k];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b[k * n + j0..k * n + j_hi];
                        for (cj, &bkj) in c_row[j0..j_hi].iter_mut().zip(b_row) {
                            *cj = bkj.mul_add(aik, *cj);
                        }
                    }
                }
            }
        }
    });
}
