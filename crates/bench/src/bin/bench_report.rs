//! `bench_report` — measures the batch-evaluation speedups and writes
//! `BENCH_model.json` into the current directory (the repo root in CI).
//!
//! Three baselines bracket the claim (see EXPERIMENTS.md):
//! - `scalar_underived`: the pre-plan per-point path, re-deriving balance
//!   points and pipeline powers on every call (replicated here because the
//!   in-tree scalar model now caches the derivation too);
//! - `scalar`: today's `EnergyRoofline::avg_power_at`, plan-backed;
//! - `batch` / `batch_par`: the SoA kernels, single-threaded and chunked.
//!
//! All sweeps run over the same 10⁶-point log-spaced intensity grid. The
//! GEMM section records the blocked-SGEMM throughput before/after the
//! zero-skip branch removal (the branchy variant is replicated inline).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use archline_core::{EnergyRoofline, MachineParams};
use archline_fit::{try_fit_platform, FitOptions};
use archline_machine::{spec_for, Engine};
use archline_microbench::{gemm_bench_with, run_suite, GemmWorkspace, SweepConfig};
use archline_obs as obs;
use archline_platforms::{platform, PlatformId, Precision};

const SWEEP_POINTS: usize = 1_000_000;

/// Schema of `BENCH_model.json`. v1 (implicit, pre-versioning) had no
/// marker; v2 adds `schema_version`, `git_rev`, and the final counter
/// snapshot under `metrics`.
const BENCH_SCHEMA_VERSION: u64 = 2;

fn grid(n: usize) -> Vec<f64> {
    let (lo, hi) = (0.01f64, 1e4f64);
    let step = (hi / lo).ln() / (n - 1) as f64;
    (0..n).map(|k| lo * (step * k as f64).exp()).collect()
}

/// Replica of the pre-plan `avg_power_at`: balance points and pipeline
/// powers re-derived per call, as the seed's scalar model did. Never
/// inlined — the seed's consumers (the `dyn Fn` sweeps in fig1, the
/// per-candidate fit objectives) paid the full derivation on every call,
/// so the baseline must not let LICM amortize it across the loop.
#[inline(never)]
fn avg_power_underived(p: &MachineParams, intensity: f64) -> f64 {
    let b = p.balances();
    let pi_f = p.flop_power();
    let pi_m = p.mem_power();
    let b_tau = b.time;
    p.const_power
        + if intensity >= b.upper {
            pi_f + if intensity.is_infinite() { 0.0 } else { pi_m * b_tau / intensity }
        } else if intensity <= b.lower {
            pi_m + pi_f * intensity / b_tau
        } else {
            p.cap.watts()
        }
}

/// Best-of-`reps` wall time of `f`, seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn mpts(n: usize, secs: f64) -> f64 {
    n as f64 / secs / 1e6
}

fn main() {
    obs::set_stderr_level(Some(obs::Level::Info));
    if let Err(e) = obs::init_from_env() {
        obs::error!("bench", "bench_report: {e}");
        std::process::exit(2);
    }

    let model = EnergyRoofline::new(
        platform(PlatformId::GtxTitan).machine_params(Precision::Single).expect("single"),
    );
    let params = *model.params();
    let plan = *model.plan();
    let xs = grid(SWEEP_POINTS);
    let mut out = vec![0.0; SWEEP_POINTS];
    let reps = 5;

    obs::info!("bench", "bench_report: 10^6-point avg-power sweep ({reps} reps each)...");
    let t_underived = best_secs(reps, || {
        for (o, &x) in out.iter_mut().zip(&xs) {
            *o = avg_power_underived(black_box(&params), black_box(x));
        }
        black_box(&out);
    });
    let t_scalar = best_secs(reps, || {
        for (o, &x) in out.iter_mut().zip(&xs) {
            *o = model.avg_power_at(black_box(x));
        }
        black_box(&out);
    });
    let t_batch = best_secs(reps, || {
        plan.avg_power_batch_serial(black_box(&xs), &mut out);
        black_box(&out);
    });
    let t_batch_par = best_secs(reps, || {
        plan.avg_power_batch(black_box(&xs), &mut out);
        black_box(&out);
    });

    obs::info!("bench", "bench_report: end-to-end fit_platform...");
    let spec = spec_for(&platform(PlatformId::ArndaleGpu), Precision::Single);
    let cfg = SweepConfig {
        points: 17,
        target_secs: 0.04,
        level_runs: 1,
        random_runs: 1,
        ..Default::default()
    };
    let suite = run_suite(&spec, &cfg, &Engine::default()).dram;
    let t_fit = best_secs(3, || {
        black_box(try_fit_platform(black_box(&suite), &FitOptions::default()).expect("fit"));
    });

    obs::info!("bench", "bench_report: blocked SGEMM (branchless vs branchy replica)...");
    let n_gemm = 256;
    let mut ws = GemmWorkspace::new(n_gemm);
    let branchless = gemm_bench_with(&mut ws, 64, 0.2);
    let branchy_secs = {
        let a: Vec<f32> = (0..n_gemm * n_gemm).map(|i| ((i % 101) as f32) * 0.01).collect();
        let b: Vec<f32> = (0..n_gemm * n_gemm).map(|i| ((i % 97) as f32) * 0.01).collect();
        let mut c = vec![0.0f32; n_gemm * n_gemm];
        // Warmup + best-of until 0.2 s, mirroring `time_kernel`.
        branchy_sgemm(&mut c, &a, &b, n_gemm, 64);
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        while total < 0.2 {
            c.fill(0.0);
            let start = Instant::now();
            branchy_sgemm(&mut c, &a, &b, n_gemm, 64);
            let dt = start.elapsed().as_secs_f64();
            black_box(&c);
            best = best.min(dt);
            total += dt;
        }
        best
    };
    let gflops = |secs: f64| 2.0 * (n_gemm as f64).powi(3) / secs / 1e9;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    if let Some(rev) = obs::git_revision() {
        let _ = writeln!(json, "  \"git_rev\": \"{rev}\",");
    }
    let _ = writeln!(json, "  \"sweep_points\": {SWEEP_POINTS},");
    let _ = writeln!(json, "  \"avg_power_sweep\": {{");
    let _ = writeln!(
        json,
        "    \"scalar_underived_mpts_per_sec\": {:.3},",
        mpts(SWEEP_POINTS, t_underived)
    );
    let _ = writeln!(json, "    \"scalar_mpts_per_sec\": {:.3},", mpts(SWEEP_POINTS, t_scalar));
    let _ = writeln!(json, "    \"batch_mpts_per_sec\": {:.3},", mpts(SWEEP_POINTS, t_batch));
    let _ = writeln!(
        json,
        "    \"batch_par_mpts_per_sec\": {:.3},",
        mpts(SWEEP_POINTS, t_batch_par)
    );
    let _ = writeln!(
        json,
        "    \"speedup_batch_vs_scalar_underived\": {:.3},",
        t_underived / t_batch
    );
    let _ = writeln!(json, "    \"speedup_batch_vs_scalar\": {:.3},", t_scalar / t_batch);
    let _ = writeln!(json, "    \"speedup_batch_par_vs_batch\": {:.3}", t_batch / t_batch_par);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fit_platform_ms\": {:.3},", t_fit * 1e3);
    let _ = writeln!(json, "  \"gemm_n{n_gemm}_block64\": {{");
    let _ = writeln!(json, "    \"branchy_gflops\": {:.3},", gflops(branchy_secs));
    let _ = writeln!(json, "    \"branchless_gflops\": {:.3}", branchless.gflops());
    let _ = writeln!(json, "  }},");
    // Final counter snapshot (obs writes well-formed JSON), so the report
    // records how much measured work stands behind the numbers above.
    json.push_str("  \"metrics\": ");
    obs::metrics::snapshot().write_json(&mut json);
    json.push_str("\n}\n");

    std::fs::write("BENCH_model.json", &json).expect("write BENCH_model.json");
    obs::info!("bench", "wrote BENCH_model.json");
    print!("{json}");
    obs::flush();
}

/// The seed's blocked SGEMM, zero-skip branch included — kept only so the
/// report can quantify what removing it bought.
fn branchy_sgemm(c: &mut [f32], a: &[f32], b: &[f32], n: usize, block: usize) {
    archline_par::parallel_chunks_mut(c, block * n, |panel_idx, c_panel| {
        let i0 = panel_idx * block;
        let rows = c_panel.len() / n;
        for k0 in (0..n).step_by(block) {
            let k_hi = (k0 + block).min(n);
            for j0 in (0..n).step_by(block) {
                let j_hi = (j0 + block).min(n);
                for di in 0..rows {
                    let i = i0 + di;
                    let c_row = &mut c_panel[di * n..(di + 1) * n];
                    for k in k0..k_hi {
                        let aik = a[i * n + k];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b[k * n + j0..k * n + j_hi];
                        for (cj, &bkj) in c_row[j0..j_hi].iter_mut().zip(b_row) {
                            *cj = bkj.mul_add(aik, *cj);
                        }
                    }
                }
            }
        }
    });
}
