//! Bench-only crate: criterion targets live in `benches/`, the
//! `bench_report` binary in `src/bin/`. This library holds the pieces both
//! need and the tests want to pin: the `BENCH_model.json` schema version
//! and the replaced-file schema check.

/// Schema of `BENCH_model.json`.
///
/// * v1 (implicit, pre-versioning): no marker.
/// * v2: adds `schema_version`, `git_rev`, and the final counter snapshot
///   under `metrics`.
/// * v3: `avg_power_sweep` becomes `kernel_sweeps` with one entry per batch
///   kernel (not just avg_power); adds `num_workers`, `par_grain`,
///   `par_threshold`; the headline `speedup_batch_vs_scalar` is the fused
///   `evaluate_batch` sweep against the *derived* per-point scalar path
///   (the underived-baseline ratio is still recorded, but no longer the
///   headline); the GEMM section gains explicit branchy/branchless fields
///   both measured from the same workspace.
/// * v4: adds the `serve` section — throughput (queries/s), shed rate,
///   mean batch occupancy, and p50/p99 latency of an in-process
///   archline-serve engine under concurrent closed-loop clients.
/// * v5: the serve section reflects adaptive batching — the headline
///   closed-loop run is pipelined (per-client request depth > 1, which
///   the admission window coalesces into wide kernel passes), the
///   depth-1 run is kept as `closed_loop_depth1` for continuity with v4,
///   an `open_loop` arrival-rate sweep records offered vs achieved qps,
///   occupancy, and p99 per rate, and `plan_cache` records hit/miss/
///   eviction counts plus the hit rate.
/// * v6: the headline closed-loop run gains a `phases_us` object — p50/p99
///   of the telemetry plane's per-phase latency decomposition (queue-wait,
///   window-hold, kernel, total) as reported on the responses' `phases_us`
///   envelope, so a regression can be localized to a pipeline stage
///   instead of showing up only in end-to-end p99.
pub const BENCH_SCHEMA_VERSION: u64 = 6;

/// Inspects a prior `BENCH_model.json` about to be replaced and returns a
/// human-readable warning when it predates `current` (or does not parse) —
/// an older binary's output should never be silently confused with the new
/// schema. Returns `None` when the file is already current.
///
/// Files written before versioning carry no `schema_version` marker and
/// count as schema 1.
pub fn prior_schema_warning(contents: &str, current: u64) -> Option<String> {
    match serde_json::from_str::<serde_json::Value>(contents) {
        Ok(v) => {
            let old_ver = v
                .as_object()
                .and_then(|m| m.get("schema_version"))
                .and_then(|v| match v {
                    serde_json::Value::Number(serde_json::Number::PosInt(n)) => Some(*n),
                    _ => None,
                })
                .unwrap_or(1);
            (old_ver < current).then(|| {
                format!(
                    "replacing BENCH_model.json with schema_version {old_ver} \
                     (current is {current})"
                )
            })
        }
        Err(e) => Some(format!("replacing unparseable BENCH_model.json: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_schema_is_silent() {
        let doc = format!("{{\"schema_version\": {BENCH_SCHEMA_VERSION}}}");
        assert_eq!(prior_schema_warning(&doc, BENCH_SCHEMA_VERSION), None);
    }

    #[test]
    fn older_schema_warns_with_both_versions() {
        // Every prior version must warn on downgrade — including the
        // immediately preceding one (v5 → v6 is the newest edge).
        for old in 2..BENCH_SCHEMA_VERSION {
            let w = prior_schema_warning(
                &format!("{{\"schema_version\": {old}}}"),
                BENCH_SCHEMA_VERSION,
            )
            .expect("older schema must warn");
            assert!(w.contains(&format!("schema_version {old}")), "{w}");
            assert!(w.contains(&format!("current is {BENCH_SCHEMA_VERSION}")), "{w}");
        }
    }

    #[test]
    fn unversioned_file_counts_as_schema_one() {
        let w = prior_schema_warning("{\"sweep_points\": 1000000}", BENCH_SCHEMA_VERSION)
            .expect("unversioned file must warn");
        assert!(w.contains("schema_version 1"), "{w}");
    }

    #[test]
    fn unparseable_file_warns() {
        let w = prior_schema_warning("not json at all", BENCH_SCHEMA_VERSION)
            .expect("junk must warn");
        assert!(w.contains("unparseable"), "{w}");
    }

    #[test]
    fn newer_schema_does_not_warn() {
        // A file from a *newer* binary is not "older"; replacing it is the
        // caller's decision, not a downgrade we flag here.
        let doc = format!("{{\"schema_version\": {}}}", BENCH_SCHEMA_VERSION + 1);
        assert_eq!(prior_schema_warning(&doc, BENCH_SCHEMA_VERSION), None);
    }
}
