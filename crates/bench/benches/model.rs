//! Bench: core model evaluation, crossover solving, fitting, and the
//! simulator engine — the building blocks behind every figure.

use criterion::{criterion_group, criterion_main, Criterion};

use archline_core::{crossovers, EnergyRoofline, Metric, Workload};
use archline_fit::fit_platform;
use archline_machine::{measure, spec_for, Engine};
use archline_microbench::{run_suite, SweepConfig};
use archline_platforms::{platform, PlatformId, Precision};

fn models() -> (EnergyRoofline, EnergyRoofline) {
    let titan = EnergyRoofline::new(
        platform(PlatformId::GtxTitan).machine_params(Precision::Single).unwrap(),
    );
    let arndale = EnergyRoofline::new(
        platform(PlatformId::ArndaleGpu).machine_params(Precision::Single).unwrap(),
    );
    (titan, arndale)
}

fn bench_model_eval(c: &mut Criterion) {
    let (titan, _) = models();
    let w = Workload::from_intensity(1e12, 4.0);
    c.bench_function("model_time_energy_power", |b| {
        b.iter(|| (titan.time(&w), titan.energy(&w), titan.avg_power(&w)))
    });
    c.bench_function("model_power_closed_form", |b| b.iter(|| titan.avg_power_at(4.0)));
}

fn bench_crossover(c: &mut Criterion) {
    let (titan, arndale) = models();
    c.bench_function("crossover_energy_eff", |b| {
        b.iter(|| crossovers(&arndale, &titan, Metric::EnergyEfficiency, 0.125, 512.0, 256))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let spec = spec_for(&platform(PlatformId::GtxTitan), Precision::Single);
    let engine = Engine::default();
    let w = spec.intensity_workload(4.0, 0.05);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("measure_one_run", |b| {
        b.iter(|| measure(&spec, &w, &engine, 7))
    });
    group.finish();
}

fn bench_fit(c: &mut Criterion) {
    let spec = spec_for(&platform(PlatformId::GtxTitan), Precision::Single);
    let cfg = SweepConfig {
        points: 17,
        target_secs: 0.04,
        level_runs: 1,
        random_runs: 1,
        ..Default::default()
    };
    let suite = run_suite(&spec, &cfg, &Engine::default());
    let mut group = c.benchmark_group("fit");
    group.sample_size(10);
    group.bench_function("staged_fit_one_platform", |b| b.iter(|| fit_platform(&suite.dram)));
    group.finish();
}

criterion_group!(benches, bench_model_eval, bench_crossover, bench_simulator, bench_fit);
criterion_main!(benches);
