//! Bench: regenerating Table I (simulate all 12 platforms + staged fits).

use criterion::{criterion_group, criterion_main, Criterion};

use archline_microbench::SweepConfig;
use archline_repro::table1;

fn bench_table1(c: &mut Criterion) {
    let cfg = SweepConfig {
        points: 17,
        target_secs: 0.04,
        level_runs: 1,
        random_runs: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("simulate_and_fit_12_platforms", |b| {
        b.iter(|| {
            let report = table1::compute(&cfg, false);
            assert_eq!(report.rows.len(), 12);
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
