//! Bench: the real host microbenchmark kernels (the live counterparts of
//! the paper's hand-tuned intensity / stream / pointer-chase benchmarks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use archline_microbench::chase::{sattolo_cycle, walk};
use archline_microbench::{fma_kernel_f32, stream_triad, StreamKind};

fn bench_intensity(c: &mut Criterion) {
    let len = 1 << 20; // 4 MiB of f32: past L2 on most hosts
    let mut data = vec![1.0f32; len];
    let mut group = c.benchmark_group("intensity_kernel");
    for chain in [1usize, 8, 64] {
        group.throughput(Throughput::Elements((2 * chain * len) as u64));
        group.bench_with_input(BenchmarkId::new("fma_chain", chain), &chain, |b, &chain| {
            b.iter(|| fma_kernel_f32(&mut data, 0.999, 1e-7, chain, len / 8));
        });
    }
    group.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");
    group.sample_size(20);
    for kind in [StreamKind::Copy, StreamKind::Triad] {
        group.bench_with_input(
            BenchmarkId::new("kernel", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| stream_triad(kind, 1 << 18, 0.0));
            },
        );
    }
    group.finish();
}

fn bench_chase(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("pointer_chase");
    for log_len in [12usize, 18] {
        let table = sattolo_cycle(1 << log_len, &mut rng);
        group.throughput(Throughput::Elements(1 << 16));
        group.bench_with_input(
            BenchmarkId::new("walk", format!("2^{log_len}")),
            &table,
            |b, table| {
                b.iter(|| walk(table, 1 << 16));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intensity, bench_stream, bench_chase);
criterion_main!(benches);
