//! Bench: regenerating Figs. 7a/7b (performance and efficiency under caps).

use criterion::{criterion_group, criterion_main, Criterion};

use archline_repro::fig7::{compute, Fig7Kind};

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7a_performance", |b| b.iter(|| compute(Fig7Kind::Performance)));
    c.bench_function("fig7b_energy_efficiency", |b| {
        b.iter(|| compute(Fig7Kind::EnergyEfficiency))
    });
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
