//! Bench: the observability substrate's disabled fast path.
//!
//! The obs crate's contract is near-zero cost when nothing is listening:
//! no sink installed and profiling off, every instrumentation point must
//! reduce to one or two relaxed atomic operations. These benches pin that —
//! a disabled span, a skipped debug! format, a counter bump, and a point
//! event dropped at the gate should all land within a few nanoseconds of
//! the bare atomic-load baseline, and far below reading the clock twice
//! (what a live span costs).

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use archline_obs::{self as obs, field, Counter};

static BENCH_COUNTER: Counter = Counter::new("bench.obs.counter");

fn bench_disabled_paths(c: &mut Criterion) {
    // No sink is installed in this process and profiling is off, so every
    // obs entry point below takes its disabled fast path.
    assert!(!obs::enabled(obs::Level::Error), "bench requires tracing disabled");

    let mut group = c.benchmark_group("obs_disabled");

    // Baseline: the cheapest thing the gate could possibly be.
    let baseline = AtomicU64::new(0);
    group.bench_function("baseline_relaxed_load", |b| {
        b.iter(|| black_box(baseline.load(Ordering::Relaxed)))
    });

    group.bench_function("enabled_check", |b| {
        b.iter(|| black_box(obs::enabled(obs::Level::Trace)))
    });

    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _span = obs::span(obs::Level::Trace, "bench", "noop");
        })
    });

    group.bench_function("span_with_fields_disabled", |b| {
        b.iter(|| {
            let _span = obs::span_with(
                obs::Level::Trace,
                "bench",
                "noop",
                &[field("i", black_box(7u64))],
            );
        })
    });

    group.bench_function("debug_macro_disabled", |b| {
        // The format! must be skipped entirely when the level is off.
        b.iter(|| obs::debug!("bench", "value {} of {}", black_box(1), black_box(2)))
    });

    group.bench_function("emit_disabled", |b| {
        b.iter(|| obs::emit(obs::Level::Debug, "bench", "noop", &[field("i", black_box(1u64))]))
    });

    // Counters always count — this is the agreed cost of keeping metrics
    // truthful with tracing off.
    group.bench_function("counter_inc", |b| b.iter(|| BENCH_COUNTER.inc()));

    group.finish();
}

criterion_group!(benches, bench_disabled_paths);
criterion_main!(benches);
