//! Bench: plan-compiled batch evaluation vs the scalar model — the
//! trajectory behind `RooflinePlan` (see EXPERIMENTS.md §Benchmark
//! methodology). Sizes 10³/10⁵/10⁷ cover below-threshold, just-parallel,
//! and saturated regimes; `fit_platform_end_to_end` times the suite → fit
//! path whose inner objective the batch kernels accelerate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use archline_core::{EnergyRoofline, Regime, RooflinePlan};
use archline_fit::{try_fit_platform, FitOptions};
use archline_machine::{spec_for, Engine};
use archline_microbench::{run_suite, SweepConfig};
use archline_platforms::{platform, PlatformId, Precision};

fn titan() -> EnergyRoofline {
    EnergyRoofline::new(
        platform(PlatformId::GtxTitan).machine_params(Precision::Single).expect("single"),
    )
}

/// Log-spaced intensity grid spanning all three regimes.
fn grid(n: usize) -> Vec<f64> {
    let (lo, hi) = (0.01f64, 1e4f64);
    let step = (hi / lo).ln() / (n - 1) as f64;
    (0..n).map(|k| lo * (step * k as f64).exp()).collect()
}

fn bench_avg_power(c: &mut Criterion) {
    let model = titan();
    let plan = *model.plan();
    let mut group = c.benchmark_group("avg_power_sweep");
    group.sample_size(10);
    for &n in &[1_000usize, 100_000, 10_000_000] {
        let xs = grid(n);
        let mut out = vec![0.0; n];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                for (o, &x) in out.iter_mut().zip(&xs) {
                    *o = model.avg_power_at(black_box(x));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
            b.iter(|| plan.avg_power_batch_serial(black_box(&xs), &mut out));
        });
        group.bench_with_input(BenchmarkId::new("batch_par", n), &n, |b, _| {
            b.iter(|| plan.avg_power_batch(black_box(&xs), &mut out));
        });
    }
    group.finish();
}

fn bench_time_energy(c: &mut Criterion) {
    let plan = RooflinePlan::new(*titan().params());
    let n = 100_000usize;
    let xs = grid(n);
    let flops: Vec<f64> = xs.iter().map(|_| 1e9).collect();
    let bytes: Vec<f64> = xs.iter().map(|&i| 1e9 / i).collect();
    let mut t = vec![0.0; n];
    let mut e = vec![0.0; n];
    let mut group = c.benchmark_group("time_energy");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("fused_batch", |b| {
        b.iter(|| plan.time_energy_batch(black_box(&flops), black_box(&bytes), &mut t, &mut e));
    });
    group.finish();
}

/// The fully fused sweep kernels: `evaluate_batch` (time+energy+power+regime
/// in one pass, scalar per-point loop as the baseline) and the curve
/// builders' fused `power_regime_batch` / `efficiency_batch`.
fn bench_fused(c: &mut Criterion) {
    let plan = RooflinePlan::new(*titan().params());
    let n = 100_000usize;
    let xs = grid(n);
    let flops: Vec<f64> = xs.iter().map(|_| 1e9).collect();
    let bytes: Vec<f64> = xs.iter().map(|&i| 1e9 / i).collect();
    let (mut t, mut e, mut p) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    let mut r = vec![Regime::MemoryBound; n];
    let mut group = c.benchmark_group("fused_sweeps");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("evaluate_scalar", |b| {
        b.iter(|| {
            for k in 0..n {
                (t[k], e[k], p[k], r[k]) = plan.evaluate(black_box(flops[k]), black_box(bytes[k]));
            }
        });
    });
    group.bench_function("evaluate_batch", |b| {
        b.iter(|| {
            plan.evaluate_batch(
                black_box(&flops),
                black_box(&bytes),
                &mut t,
                &mut e,
                &mut p,
                &mut r,
            )
        });
    });
    group.bench_function("power_regime_batch", |b| {
        b.iter(|| plan.power_regime_batch(black_box(&xs), &mut p, &mut r));
    });
    let (mut perf, mut eff) = (vec![0.0; n], vec![0.0; n]);
    group.bench_function("efficiency_batch", |b| {
        b.iter(|| plan.efficiency_batch(black_box(&xs), &mut perf, &mut eff, &mut p));
    });
    group.finish();
}

fn bench_fit_platform(c: &mut Criterion) {
    let spec = spec_for(&platform(PlatformId::ArndaleGpu), Precision::Single);
    let cfg = SweepConfig {
        points: 17,
        target_secs: 0.04,
        level_runs: 1,
        random_runs: 1,
        ..Default::default()
    };
    let suite = run_suite(&spec, &cfg, &Engine::default()).dram;
    let mut group = c.benchmark_group("fit_platform_end_to_end");
    group.sample_size(10);
    group.bench_function("arndale_17pt", |b| {
        b.iter(|| try_fit_platform(black_box(&suite), &FitOptions::default()).expect("fit"));
    });
    group.finish();
}

criterion_group!(benches, bench_avg_power, bench_time_energy, bench_fused, bench_fit_platform);
criterion_main!(benches);
