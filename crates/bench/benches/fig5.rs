//! Bench: regenerating Fig. 5 (power curves + simulated dots, 12 panels).

use criterion::{criterion_group, criterion_main, Criterion};

use archline_core::{power::power_curve, EnergyRoofline};
use archline_microbench::SweepConfig;
use archline_platforms::{platform, PlatformId, Precision};
use archline_repro::fig5;

fn bench_fig5(c: &mut Criterion) {
    let cfg = SweepConfig {
        points: 17,
        target_secs: 0.04,
        level_runs: 1,
        random_runs: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("full_pipeline", |b| b.iter(|| fig5::compute(&cfg)));
    group.finish();

    // Curve evaluation alone (per panel).
    let titan = EnergyRoofline::new(
        platform(PlatformId::GtxTitan).machine_params(Precision::Single).unwrap(),
    );
    c.bench_function("power_curve_97pts", |b| b.iter(|| power_curve(&titan, 0.125, 512.0, 97)));
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
