//! Bench: regenerating Fig. 4 (error distributions + K-S tests).

use criterion::{criterion_group, criterion_main, Criterion};

use archline_microbench::SweepConfig;
use archline_repro::fig4;
use archline_stats::ks_two_sample;

fn bench_fig4(c: &mut Criterion) {
    let cfg = SweepConfig {
        points: 17,
        target_secs: 0.04,
        level_runs: 1,
        random_runs: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("full_pipeline", |b| b.iter(|| fig4::compute(&cfg)));
    group.finish();

    // The statistical kernel on its own.
    let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin()).collect();
    let ys: Vec<f64> = (0..500).map(|i| (i as f64 * 0.41).cos() * 1.1).collect();
    c.bench_function("ks_two_sample_500x500", |b| b.iter(|| ks_two_sample(&xs, &ys)));
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
