//! Bench: regenerating Fig. 1 (Titan vs Arndale GPU comparison).

use criterion::{criterion_group, criterion_main, Criterion};

use archline_repro::fig1;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.bench_function("model_only", |b| {
        b.iter(|| {
            let r = fig1::compute(0);
            assert!(r.bandwidth_advantage > 1.0);
            r
        })
    });
    group.sample_size(10);
    group.bench_function("with_measured_dots", |b| b.iter(|| fig1::compute(5)));
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
