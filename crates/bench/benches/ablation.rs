//! Bench: ablation analyses of the design choices DESIGN.md calls out —
//! capped vs. uncapped fitting, the utilization-scaled capping refinement,
//! depth fitting, bootstrap CIs, and the blocked-GEMM application kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use archline_core::extended::fit_depth;
use archline_core::{UtilizationScaledModel, Workload};
use archline_fit::{fit_platform_ci, MeasurementSet};
use archline_machine::{spec_for, Engine};
use archline_microbench::{gemm_bench_with, run_suite, GemmWorkspace, SweepConfig};
use archline_platforms::{platform, PlatformId, Precision};

fn arndale_suite() -> MeasurementSet {
    let spec = spec_for(&platform(PlatformId::ArndaleGpu), Precision::Single);
    let cfg = SweepConfig {
        points: 17,
        target_secs: 0.04,
        level_runs: 1,
        random_runs: 1,
        ..Default::default()
    };
    run_suite(&spec, &cfg, &Engine::default()).dram
}

fn bench_extended_model(c: &mut Criterion) {
    let table1 = platform(PlatformId::ArndaleGpu)
        .machine_params(Precision::Single)
        .expect("single");
    let suite = arndale_suite();
    let obs: Vec<(Workload, f64)> = suite
        .runs
        .iter()
        .map(|r| (Workload::new(r.flops, r.bytes), r.avg_power()))
        .collect();
    c.bench_function("fit_utilization_depth", |b| b.iter(|| fit_depth(&table1, &obs)));
    let scaled = UtilizationScaledModel::new(table1, 0.13);
    c.bench_function("utilization_model_power_eval", |b| {
        b.iter(|| scaled.avg_power_at(3.93))
    });
}

fn bench_bootstrap_ci(c: &mut Criterion) {
    let suite = arndale_suite();
    let mut group = c.benchmark_group("bootstrap_ci");
    group.sample_size(10);
    group.bench_function("8_resamples", |b| {
        b.iter(|| fit_platform_ci(&suite, 8, 0.9, 1))
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocked_sgemm");
    group.sample_size(10);
    for n in [128usize, 256] {
        // The workspace hoists the three matrix allocations out of the
        // timing loop; each iteration measures the multiply alone.
        let mut ws = GemmWorkspace::new(n);
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _n| {
            b.iter(|| gemm_bench_with(&mut ws, 64, 0.0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extended_model, bench_bootstrap_ci, bench_gemm);
criterion_main!(benches);
