//! Bench: regenerating Fig. 6 (power under caps, model-only).

use criterion::{criterion_group, criterion_main, Criterion};

use archline_repro::fig6;

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_all_panels", |b| {
        b.iter(|| {
            let r = fig6::compute();
            assert_eq!(r.panels.len(), 12);
            r
        })
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
