//! Table I of the paper, transcribed.
//!
//! Units: energies are stored in Joules, rates in flop/s, B/s or accesses/s
//! (the table prints pJ/flop, pJ/B, nJ/access, Gflop/s, GB/s, Macc/s).
//! Sustained throughputs are the parenthetical values of columns 8–13.

use crate::record::{
    EnergyRate, NoiseCalib, PaperHeadline, Platform, PlatformClass, PlatformId, ProcessorKind,
    QuirkHint, RandomCost, VendorPeaks,
};

const G: f64 = 1e9;
const M: f64 = 1e6;
const PJ: f64 = 1e-12;
const NJ: f64 = 1e-9;

fn er(pj: f64, grate: f64) -> EnergyRate {
    EnergyRate { energy: pj * PJ, rate: grate * G }
}

fn rc(nj: f64, macc: f64) -> RandomCost {
    RandomCost { energy_per_access: nj * NJ, accesses_per_sec: macc * M }
}

/// Returns the Table I record for one platform.
pub fn platform(id: PlatformId) -> Platform {
    match id {
        PlatformId::DesktopCpu => Platform {
            id,
            name: "Desktop CPU".to_string(),
            codename: "Nehalem".to_string(),
            processor: "Intel Core i7-950".to_string(),
            process_nm: Some(45),
            class: PlatformClass::Desktop,
            kind: ProcessorKind::Cpu,
            vendor: VendorPeaks {
                single_flops: 107.0 * G,
                double_flops: Some(53.3 * G),
                mem_bandwidth: 25.6 * G,
            },
            const_power: 122.0,
            idle_power: 79.9,
            const_below_idle: false,
            usable_power: 44.2,
            flop_single: er(371.0, 99.4),
            flop_double: Some(er(670.0, 49.7)),
            mem: er(795.0, 19.1),
            l1: Some(er(135.0, 201.0)),
            l2: Some(er(168.0, 120.0)),
            random: Some(rc(108.0, 149.0)),
            line_bytes: 64,
            headline: PaperHeadline {
                peak_flops_per_joule: 620.0 * M,
                peak_bytes_per_joule: 140.0 * M,
            },
            ks_starred: false,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.040, rate_sigma: 0.010 },
        },
        PlatformId::NucCpu => Platform {
            id,
            name: "NUC CPU".to_string(),
            codename: "Ivy Bridge".to_string(),
            processor: "Intel Core i3-3217U".to_string(),
            process_nm: Some(22),
            class: PlatformClass::Mini,
            kind: ProcessorKind::Cpu,
            vendor: VendorPeaks {
                single_flops: 57.6 * G,
                double_flops: Some(28.8 * G),
                mem_bandwidth: 25.6 * G,
            },
            const_power: 16.5,
            idle_power: 13.2,
            const_below_idle: false,
            usable_power: 7.37,
            flop_single: er(14.7, 55.6),
            flop_double: Some(er(24.3, 27.9)),
            mem: er(418.0, 17.9),
            l1: Some(er(8.75, 201.0)),
            l2: Some(er(14.3, 103.0)),
            random: Some(rc(54.6, 55.3)),
            line_bytes: 64,
            headline: PaperHeadline {
                peak_flops_per_joule: 3.2 * G,
                peak_bytes_per_joule: 750.0 * M,
            },
            ks_starred: false,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.035, rate_sigma: 0.008 },
        },
        PlatformId::NucGpu => Platform {
            id,
            name: "NUC GPU".to_string(),
            codename: "Ivy Bridge".to_string(),
            processor: "Intel HD 4000".to_string(),
            process_nm: Some(22),
            class: PlatformClass::Mini,
            kind: ProcessorKind::Gpu,
            vendor: VendorPeaks {
                single_flops: 269.0 * G,
                double_flops: None,
                mem_bandwidth: 25.6 * G,
            },
            const_power: 10.1,
            idle_power: 13.2,
            const_below_idle: true,
            usable_power: 17.7,
            flop_single: er(76.1, 268.0),
            flop_double: None,
            mem: er(837.0, 15.4),
            l1: None, // OpenCL driver deficiencies (Table I note 2)
            l2: None,
            random: None,
            line_bytes: 64,
            headline: PaperHeadline {
                peak_flops_per_joule: 8.8 * G,
                peak_bytes_per_joule: 670.0 * M,
            },
            ks_starred: true,
            quirk: QuirkHint::OsInterference,
            noise: NoiseCalib { power_sigma: 0.012, rate_sigma: 0.008 },
        },
        PlatformId::ApuCpu => Platform {
            id,
            name: "APU CPU".to_string(),
            codename: "Bobcat".to_string(),
            processor: "AMD E2-1800".to_string(),
            process_nm: Some(40),
            class: PlatformClass::Mini,
            kind: ProcessorKind::Cpu,
            vendor: VendorPeaks {
                single_flops: 13.6 * G,
                double_flops: Some(5.10 * G),
                mem_bandwidth: 10.7 * G,
            },
            const_power: 20.1,
            idle_power: 11.8,
            const_below_idle: false,
            usable_power: 1.39,
            flop_single: er(33.5, 13.4),
            flop_double: Some(er(119.0, 5.05)),
            mem: er(435.0, 3.32),
            l1: Some(er(84.0, 25.8)),
            l2: Some(er(138.0, 11.6)),
            random: Some(rc(75.6, 8.03)),
            line_bytes: 64,
            headline: PaperHeadline {
                peak_flops_per_joule: 650.0 * M,
                peak_bytes_per_joule: 150.0 * M,
            },
            ks_starred: false,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.035, rate_sigma: 0.008 },
        },
        PlatformId::ApuGpu => Platform {
            id,
            name: "APU GPU".to_string(),
            codename: "Zacate".to_string(),
            processor: "AMD HD 7340".to_string(),
            process_nm: Some(40),
            class: PlatformClass::Mini,
            kind: ProcessorKind::Gpu,
            vendor: VendorPeaks {
                single_flops: 109.0 * G,
                double_flops: None,
                mem_bandwidth: 10.7 * G,
            },
            const_power: 15.6,
            idle_power: 11.8,
            const_below_idle: false,
            usable_power: 3.23,
            flop_single: er(5.82, 104.0),
            flop_double: None,
            mem: er(333.0, 8.70),
            l1: Some(er(6.47, 46.0)), // software-managed scratchpad
            l2: None,
            random: Some(rc(45.8, 115.0)),
            line_bytes: 64,
            headline: PaperHeadline {
                peak_flops_per_joule: 6.4 * G,
                peak_bytes_per_joule: 470.0 * M,
            },
            ks_starred: true,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.002, rate_sigma: 0.003 },
        },
        PlatformId::Gtx580 => Platform {
            id,
            name: "GTX 580".to_string(),
            codename: "Fermi".to_string(),
            processor: "NVIDIA GF100".to_string(),
            process_nm: Some(40),
            class: PlatformClass::Coprocessor,
            kind: ProcessorKind::Gpu,
            vendor: VendorPeaks {
                single_flops: 1580.0 * G,
                double_flops: Some(198.0 * G),
                mem_bandwidth: 192.0 * G,
            },
            const_power: 122.0,
            idle_power: 148.0,
            const_below_idle: true,
            usable_power: 146.0,
            flop_single: er(99.7, 1400.0),
            flop_double: Some(er(213.0, 196.0)),
            mem: er(513.0, 171.0),
            l1: Some(er(149.0, 761.0)),
            l2: Some(er(257.0, 284.0)),
            random: Some(rc(112.0, 977.0)),
            line_bytes: 128,
            headline: PaperHeadline {
                peak_flops_per_joule: 5.3 * G,
                peak_bytes_per_joule: 810.0 * M,
            },
            ks_starred: false,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.090, rate_sigma: 0.015 },
        },
        PlatformId::Gtx680 => Platform {
            id,
            name: "GTX 680".to_string(),
            codename: "Kepler".to_string(),
            processor: "NVIDIA GK104".to_string(),
            process_nm: Some(28),
            class: PlatformClass::Coprocessor,
            kind: ProcessorKind::Gpu,
            vendor: VendorPeaks {
                single_flops: 3530.0 * G,
                double_flops: Some(147.0 * G),
                mem_bandwidth: 192.0 * G,
            },
            const_power: 66.4,
            idle_power: 100.0,
            const_below_idle: true,
            usable_power: 145.0,
            flop_single: er(43.2, 3030.0),
            flop_double: Some(er(263.0, 147.0)),
            mem: er(437.0, 158.0),
            l1: Some(er(51.0, 1150.0)), // Kepler: shared memory, not L1
            l2: Some(er(195.0, 297.0)),
            random: Some(rc(184.0, 1420.0)),
            line_bytes: 128,
            headline: PaperHeadline {
                peak_flops_per_joule: 15.0 * G,
                peak_bytes_per_joule: 1.2 * G,
            },
            ks_starred: true,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.006, rate_sigma: 0.006 },
        },
        PlatformId::GtxTitan => Platform {
            id,
            name: "GTX Titan".to_string(),
            codename: "Kepler".to_string(),
            processor: "NVIDIA GK110".to_string(),
            process_nm: Some(28),
            class: PlatformClass::Coprocessor,
            kind: ProcessorKind::Gpu,
            vendor: VendorPeaks {
                single_flops: 4990.0 * G,
                double_flops: Some(1660.0 * G),
                mem_bandwidth: 288.0 * G,
            },
            const_power: 123.0,
            idle_power: 72.9,
            const_below_idle: false,
            usable_power: 164.0,
            flop_single: er(30.4, 4020.0),
            flop_double: Some(er(93.9, 1600.0)),
            mem: er(267.0, 239.0),
            l1: Some(er(24.4, 1610.0)), // Kepler: shared memory
            l2: Some(er(195.0, 297.0)),
            random: Some(rc(48.0, 968.0)),
            line_bytes: 128,
            headline: PaperHeadline {
                peak_flops_per_joule: 16.0 * G,
                peak_bytes_per_joule: 1.3 * G,
            },
            ks_starred: false,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.050, rate_sigma: 0.010 },
        },
        PlatformId::XeonPhi => Platform {
            id,
            name: "Xeon Phi".to_string(),
            codename: "KNC".to_string(),
            processor: "Intel 5110P".to_string(),
            process_nm: Some(22),
            class: PlatformClass::Coprocessor,
            kind: ProcessorKind::Manycore,
            vendor: VendorPeaks {
                single_flops: 2020.0 * G,
                double_flops: Some(1010.0 * G),
                mem_bandwidth: 320.0 * G,
            },
            const_power: 180.0,
            idle_power: 90.0,
            const_below_idle: false,
            usable_power: 36.1,
            flop_single: er(6.05, 2020.0),
            flop_double: Some(er(12.4, 1010.0)),
            mem: er(136.0, 181.0),
            l1: Some(er(2.19, 2890.0)),
            l2: Some(er(8.65, 591.0)),
            random: Some(rc(5.11, 706.0)),
            line_bytes: 64,
            headline: PaperHeadline {
                peak_flops_per_joule: 11.0 * G,
                peak_bytes_per_joule: 880.0 * M,
            },
            ks_starred: true,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.006, rate_sigma: 0.006 },
        },
        PlatformId::PandaBoardEs => Platform {
            id,
            name: "PandaBoard ES".to_string(),
            codename: "Cortex-A9".to_string(),
            processor: "TI OMAP4460".to_string(),
            process_nm: Some(45),
            class: PlatformClass::Mobile,
            kind: ProcessorKind::Cpu,
            vendor: VendorPeaks {
                single_flops: 9.60 * G,
                double_flops: Some(3.60 * G),
                mem_bandwidth: 3.20 * G,
            },
            const_power: 3.48,
            idle_power: 2.74,
            const_below_idle: false,
            usable_power: 1.19,
            flop_single: er(37.2, 9.47),
            flop_double: Some(er(302.0, 3.02)),
            mem: er(810.0, 1.28),
            l1: Some(er(79.5, 18.4)),
            l2: Some(er(134.0, 4.12)),
            random: Some(rc(60.9, 12.1)),
            line_bytes: 32,
            headline: PaperHeadline {
                peak_flops_per_joule: 2.5 * G,
                peak_bytes_per_joule: 280.0 * M,
            },
            ks_starred: true,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.006, rate_sigma: 0.006 },
        },
        PlatformId::ArndaleCpu => Platform {
            id,
            name: "Arndale CPU".to_string(),
            codename: "Cortex-A15".to_string(),
            processor: "Samsung Exynos 5".to_string(),
            process_nm: Some(32),
            class: PlatformClass::Mobile,
            kind: ProcessorKind::Cpu,
            vendor: VendorPeaks {
                single_flops: 27.2 * G,
                double_flops: Some(6.80 * G),
                mem_bandwidth: 12.8 * G,
            },
            const_power: 5.50,
            idle_power: 1.72,
            const_below_idle: false,
            usable_power: 2.01,
            flop_single: er(107.0, 15.8),
            flop_double: Some(er(275.0, 3.97)),
            mem: er(386.0, 3.94),
            l1: Some(er(76.3, 50.8)),
            l2: Some(er(248.0, 15.2)),
            random: Some(rc(138.0, 14.8)),
            line_bytes: 64,
            headline: PaperHeadline {
                peak_flops_per_joule: 2.2 * G,
                peak_bytes_per_joule: 560.0 * M,
            },
            ks_starred: true,
            quirk: QuirkHint::None,
            noise: NoiseCalib { power_sigma: 0.006, rate_sigma: 0.006 },
        },
        PlatformId::ArndaleGpu => Platform {
            id,
            name: "Arndale GPU".to_string(),
            codename: "Mali T-604".to_string(),
            processor: "Samsung Exynos 5".to_string(),
            process_nm: Some(32),
            class: PlatformClass::Mobile,
            kind: ProcessorKind::Gpu,
            vendor: VendorPeaks {
                single_flops: 72.0 * G,
                double_flops: None,
                mem_bandwidth: 12.8 * G,
            },
            const_power: 1.28,
            idle_power: 1.72,
            const_below_idle: true,
            usable_power: 4.83,
            flop_single: er(84.2, 33.0),
            flop_double: None,
            mem: er(518.0, 8.39),
            l1: Some(er(71.4, 33.4)), // software-managed scratchpad
            l2: None,
            random: Some(rc(125.0, 33.6)),
            line_bytes: 64,
            headline: PaperHeadline {
                peak_flops_per_joule: 8.1 * G,
                peak_bytes_per_joule: 1.5 * G,
            },
            ks_starred: true,
            quirk: QuirkHint::UtilizationScaling,
            noise: NoiseCalib { power_sigma: 0.006, rate_sigma: 0.006 },
        },
    }
}

/// All twelve platforms in Table I order.
pub fn all_platforms() -> Vec<Platform> {
    PlatformId::ALL.iter().map(|&id| platform(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Precision;

    #[test]
    fn twelve_platforms_with_unique_names() {
        let all = all_platforms();
        assert_eq!(all.len(), 12);
        let mut names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn exactly_seven_platforms_are_ks_starred() {
        // Fig. 4: Arndale GPU, NUC GPU, Arndale CPU, GTX 680, PandaBoard ES,
        // Xeon Phi, APU GPU.
        let starred: Vec<_> =
            all_platforms().into_iter().filter(|p| p.ks_starred).map(|p| p.id).collect();
        assert_eq!(starred.len(), 7);
        for id in [
            PlatformId::ArndaleGpu,
            PlatformId::NucGpu,
            PlatformId::ArndaleCpu,
            PlatformId::Gtx680,
            PlatformId::PandaBoardEs,
            PlatformId::XeonPhi,
            PlatformId::ApuGpu,
        ] {
            assert!(starred.contains(&id), "{id:?} should be starred");
        }
    }

    #[test]
    fn exactly_four_platforms_have_const_below_idle() {
        // Table I note 1.
        let marked: Vec<_> =
            all_platforms().into_iter().filter(|p| p.const_below_idle).map(|p| p.id).collect();
        assert_eq!(
            marked,
            vec![
                PlatformId::NucGpu,
                PlatformId::Gtx580,
                PlatformId::Gtx680,
                PlatformId::ArndaleGpu
            ]
        );
    }

    #[test]
    fn all_single_precision_models_validate() {
        for p in all_platforms() {
            let m = p.machine_params(Precision::Single).unwrap();
            assert!(m.validate().is_ok(), "{}", p.name);
        }
    }

    #[test]
    fn double_precision_missing_exactly_where_the_table_says() {
        let no_double = [PlatformId::NucGpu, PlatformId::ApuGpu, PlatformId::ArndaleGpu];
        for p in all_platforms() {
            let res = p.machine_params(Precision::Double);
            if no_double.contains(&p.id) {
                assert!(res.is_err(), "{} should lack double", p.name);
            } else {
                assert!(res.is_ok(), "{} should support double", p.name);
            }
        }
    }

    #[test]
    fn hierarchies_validate_and_respect_energy_ordering() {
        for p in all_platforms() {
            let h = p.hier_params(Precision::Single).unwrap();
            // Paper §V-B: ε_L1 ≤ ε_L2 for every system; DRAM above both.
            h.check_level_ordering().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn sustained_peaks_do_not_exceed_vendor_claims() {
        for p in all_platforms() {
            assert!(
                p.sustained_flop_fraction() <= 1.001,
                "{}: {}",
                p.name,
                p.sustained_flop_fraction()
            );
            assert!(p.sustained_bw_fraction() <= 1.001, "{}", p.name);
        }
    }

    #[test]
    fn random_access_energy_at_least_an_order_above_mem_per_line() {
        // Paper §V-B: ε_rand includes reading an entire line, so per access
        // it should be far above ε_mem × 1 B; sanity: ε_rand ≥ 5 × line ε_mem
        // is too strong, but ε_rand ≥ ε_mem per byte × 8 holds broadly.
        for p in all_platforms() {
            if let Some(r) = p.random {
                assert!(
                    r.energy_per_access > 8.0 * p.mem.energy,
                    "{}: ε_rand {} vs ε_mem {}",
                    p.name,
                    r.energy_per_access,
                    p.mem.energy
                );
            }
        }
    }

    #[test]
    fn phi_random_access_is_an_order_cheaper_than_everyone_else() {
        // Paper conclusion: Xeon Phi's ε_rand is at least one order of
        // magnitude below any other platform (5.11 nJ vs ≥ 45.8 nJ).
        let all = all_platforms();
        let phi = all.iter().find(|p| p.id == PlatformId::XeonPhi).unwrap();
        let phi_rand = phi.random.unwrap().energy_per_access;
        for p in &all {
            if p.id != PlatformId::XeonPhi {
                if let Some(r) = p.random {
                    assert!(
                        r.energy_per_access >= 8.9 * phi_rand,
                        "{}: {} vs Phi {}",
                        p.name,
                        r.energy_per_access,
                        phi_rand
                    );
                }
            }
        }
    }

    #[test]
    fn const_power_fraction_above_half_on_seven_platforms() {
        // Paper §V-C: π_1/(π_1+Δπ) > 50 % for 7 of the 12 platforms.
        let over_half = all_platforms()
            .iter()
            .filter(|p| p.const_power / p.max_power() > 0.5)
            .count();
        assert_eq!(over_half, 7);
    }

    #[test]
    fn peak_efficiencies_match_fig5_headlines() {
        // The model's I→∞ and I→0 efficiency limits must reproduce the
        // paper's Fig. 5 annotations within rounding (headline values carry
        // 2 significant digits).
        use archline_core::EnergyRoofline;
        for p in all_platforms() {
            let m = EnergyRoofline::new(p.machine_params(Precision::Single).unwrap());
            let flops_per_j = m.peak_energy_eff();
            let bytes_per_j = m.peak_byte_eff();
            let rel_f = (flops_per_j - p.headline.peak_flops_per_joule).abs()
                / p.headline.peak_flops_per_joule;
            let rel_b = (bytes_per_j - p.headline.peak_bytes_per_joule).abs()
                / p.headline.peak_bytes_per_joule;
            assert!(rel_f < 0.06, "{}: {} vs {} flop/J", p.name, flops_per_j, p.headline.peak_flops_per_joule);
            assert!(rel_b < 0.06, "{}: {} vs {} B/J", p.name, bytes_per_j, p.headline.peak_bytes_per_joule);
        }
    }

    #[test]
    fn dram_level_index_counts_present_caches() {
        let titan = platform(PlatformId::GtxTitan);
        assert_eq!(titan.dram_level_index(), 2);
        let nuc_gpu = platform(PlatformId::NucGpu);
        assert_eq!(nuc_gpu.dram_level_index(), 0);
        let arndale_gpu = platform(PlatformId::ArndaleGpu);
        assert_eq!(arndale_gpu.dram_level_index(), 1);
    }

    #[test]
    fn serde_round_trip() {
        for p in all_platforms() {
            let json = serde_json::to_string(&p).unwrap();
            let back: Platform = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
