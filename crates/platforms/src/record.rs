//! Typed representation of one Table I row.

use serde::{Deserialize, Serialize};

use archline_core::{
    HierParams, MachineParams, MemoryLevel, ModelError, PowerCap, RandomAccessParams,
};

/// Identifier for each of the paper's 12 platforms, in Table I order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum PlatformId {
    DesktopCpu,
    NucCpu,
    NucGpu,
    ApuCpu,
    ApuGpu,
    Gtx580,
    Gtx680,
    GtxTitan,
    XeonPhi,
    PandaBoardEs,
    ArndaleCpu,
    ArndaleGpu,
}

impl PlatformId {
    /// All twelve platforms, in Table I order.
    pub const ALL: [PlatformId; 12] = [
        PlatformId::DesktopCpu,
        PlatformId::NucCpu,
        PlatformId::NucGpu,
        PlatformId::ApuCpu,
        PlatformId::ApuGpu,
        PlatformId::Gtx580,
        PlatformId::Gtx680,
        PlatformId::GtxTitan,
        PlatformId::XeonPhi,
        PlatformId::PandaBoardEs,
        PlatformId::ArndaleCpu,
        PlatformId::ArndaleGpu,
    ];
}

/// Broad market class of the system the platform lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformClass {
    /// Conventional desktop/server x86 box.
    Desktop,
    /// Mini-PC class (Intel NUC, AMD APU boards).
    Mini,
    /// Discrete coprocessor card (GPUs, Xeon Phi) — measured without host.
    Coprocessor,
    /// Mobile/embedded developer board (ARM SoCs) — measured at the wall.
    Mobile,
}

/// What kind of processor executes the microbenchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessorKind {
    /// Conventional CPU cores.
    Cpu,
    /// GPU (discrete or integrated).
    Gpu,
    /// Many-core coprocessor (Xeon Phi).
    Manycore,
}

/// Floating-point precision of a microbenchmark / model instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floats (the paper's headline results).
    Single,
    /// 64-bit floats (not supported on all platforms).
    Double,
}

/// Vendor-claimed peaks (Table I columns 3–5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VendorPeaks {
    /// Single-precision peak, flop/s.
    pub single_flops: f64,
    /// Double-precision peak, flop/s (None where unsupported).
    pub double_flops: Option<f64>,
    /// Peak memory bandwidth, B/s.
    pub mem_bandwidth: f64,
}

/// A fitted marginal energy cost paired with the sustained throughput the
/// microbenchmark achieved (the parenthetical values of Table I cols 8–13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyRate {
    /// Energy per operation (J/flop or J/B).
    pub energy: f64,
    /// Sustained rate (flop/s or B/s).
    pub rate: f64,
}

/// Cache-level cost (`ε_L1`/`ε_L2` columns): inclusive energy and bandwidth.
pub type CacheCost = EnergyRate;

/// Random-access cost (`ε_rand` column): per-access energy and access rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomCost {
    /// Energy per access, J.
    pub energy_per_access: f64,
    /// Sustained accesses per second.
    pub accesses_per_sec: f64,
}

/// The headline numbers the paper annotates each Fig. 5 panel with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperHeadline {
    /// Peak energy-efficiency, flop/J (e.g. 16 Gflop/J for the GTX Titan).
    pub peak_flops_per_joule: f64,
    /// Peak streaming efficiency, B/J (e.g. 1.3 GB/J for the GTX Titan).
    pub peak_bytes_per_joule: f64,
}

/// Platform quirks the paper reports, realized by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuirkHint {
    /// Well-behaved platform.
    None,
    /// NUC GPU: OS interference (Windows-only OpenCL driver, no user-level
    /// power management — paper footnote 5) causes bursty power variability.
    OsInterference,
    /// Arndale GPU: active energy-efficiency scaling with utilization even
    /// at fixed clocks, causing ≤15 % mid-intensity mispredictions (§V-C).
    UtilizationScaling,
}

/// Per-platform measurement/machine noise calibration for the simulator.
///
/// The paper does not report raw noise levels; these are calibrated so the
/// simulated pipeline reproduces Fig. 4's error spreads and significance
/// pattern (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseCalib {
    /// Relative sigma of run-level power noise.
    pub power_sigma: f64,
    /// Relative sigma of run-level throughput noise.
    pub rate_sigma: f64,
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Stable identifier.
    pub id: PlatformId,
    /// Display name used in the paper ("GTX Titan", "Arndale GPU", …).
    pub name: String,
    /// Microarchitecture codename ("Kepler", "Bobcat", …).
    pub codename: String,
    /// Part number ("NVIDIA GK110", "Intel Core i7-950", …).
    pub processor: String,
    /// Process node in nanometers, when the paper lists it.
    pub process_nm: Option<u32>,
    /// Market class.
    pub class: PlatformClass,
    /// Processor kind.
    pub kind: ProcessorKind,
    /// Vendor-claimed peaks.
    pub vendor: VendorPeaks,
    /// Fitted constant power `π_1`, W.
    pub const_power: f64,
    /// Observed idle power, W (Table I parenthetical in column 6).
    pub idle_power: f64,
    /// `true` for the four platforms whose fitted `π_1` fell below observed
    /// idle power (Table I note 1, the "*" marks).
    pub const_below_idle: bool,
    /// Fitted usable power `Δπ`, W.
    pub usable_power: f64,
    /// Single-precision flop cost `ε_s` + sustained rate.
    pub flop_single: EnergyRate,
    /// Double-precision flop cost `ε_d` + sustained rate (None where
    /// unsupported or unmeasurable).
    pub flop_double: Option<EnergyRate>,
    /// DRAM streaming cost `ε_mem` + sustained bandwidth.
    pub mem: EnergyRate,
    /// L1 / scratchpad / shared-memory cost `ε_L1` (None where the driver
    /// prevented measurement).
    pub l1: Option<CacheCost>,
    /// L2 cost `ε_L2` (None where not applicable).
    pub l2: Option<CacheCost>,
    /// Random-access cost `ε_rand` (None where unmeasurable).
    pub random: Option<RandomCost>,
    /// Cache-line / minimum random-access granularity, bytes.
    pub line_bytes: u32,
    /// Fig. 5 headline annotations.
    pub headline: PaperHeadline,
    /// `true` for the seven platforms Fig. 4 marks "**" (capped vs. uncapped
    /// error distributions differ at p < 0.05 by the K-S test).
    pub ks_starred: bool,
    /// Simulator quirk.
    pub quirk: QuirkHint,
    /// Simulator noise calibration.
    pub noise: NoiseCalib,
}

impl Platform {
    /// Two-level model parameters for the given precision, using the
    /// *sustained* throughputs (the model's `τ` are throughput reciprocals).
    ///
    /// Returns [`ModelError::MissingField`] when the precision is
    /// unsupported on this platform.
    pub fn machine_params(&self, precision: Precision) -> Result<MachineParams, ModelError> {
        let flop = match precision {
            Precision::Single => self.flop_single,
            Precision::Double => {
                self.flop_double.ok_or(ModelError::MissingField { name: "flop_double" })?
            }
        };
        MachineParams::builder()
            .flops_per_sec(flop.rate)
            .bytes_per_sec(self.mem.rate)
            .energy_per_flop(flop.energy)
            .energy_per_byte(self.mem.energy)
            .const_power(self.const_power)
            .cap(PowerCap::Capped(self.usable_power))
            .build()
    }

    /// Hierarchy model parameters (levels ordered fastest-first: L1, L2,
    /// DRAM — missing levels skipped) for the given precision.
    pub fn hier_params(&self, precision: Precision) -> Result<HierParams, ModelError> {
        let flop = match precision {
            Precision::Single => self.flop_single,
            Precision::Double => {
                self.flop_double.ok_or(ModelError::MissingField { name: "flop_double" })?
            }
        };
        let mut levels = Vec::with_capacity(3);
        if let Some(l1) = self.l1 {
            levels.push(MemoryLevel::from_bandwidth("L1", l1.rate, l1.energy));
        }
        if let Some(l2) = self.l2 {
            levels.push(MemoryLevel::from_bandwidth("L2", l2.rate, l2.energy));
        }
        levels.push(MemoryLevel::from_bandwidth("DRAM", self.mem.rate, self.mem.energy));
        let params = HierParams {
            time_per_flop: 1.0 / flop.rate,
            energy_per_flop: flop.energy,
            levels,
            random: self
                .random
                .map(|r| RandomAccessParams::from_rate(r.accesses_per_sec, r.energy_per_access)),
            const_power: self.const_power,
            cap: PowerCap::Capped(self.usable_power),
        };
        params.validate()?;
        Ok(params)
    }

    /// Index of the DRAM level within [`Platform::hier_params`]' levels.
    pub fn dram_level_index(&self) -> usize {
        usize::from(self.l1.is_some()) + usize::from(self.l2.is_some())
    }

    /// Single-precision efficiency of the sustained peak relative to the
    /// vendor claim (the bracketed percentages in Fig. 5, e.g. "81 %").
    pub fn sustained_flop_fraction(&self) -> f64 {
        self.flop_single.rate / self.vendor.single_flops
    }

    /// Sustained bandwidth relative to the vendor claim.
    pub fn sustained_bw_fraction(&self) -> f64 {
        self.mem.rate / self.vendor.mem_bandwidth
    }

    /// `true` when the platform supports double precision in Table I.
    pub fn supports_double(&self) -> bool {
        self.flop_double.is_some()
    }

    /// Maximum modeled system power `π_1 + Δπ`, W.
    pub fn max_power(&self) -> f64 {
        self.const_power + self.usable_power
    }
}
