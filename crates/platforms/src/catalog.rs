//! JSON import/export of platform records, so downstream users can study
//! their own hardware with the same tooling: dump the Table I catalog,
//! edit/extend it, and load custom records back.

use crate::record::Platform;
use crate::table1::all_platforms;

/// Serializes the full Table I catalog as pretty JSON.
pub fn catalog_json() -> String {
    serde_json::to_string_pretty(&all_platforms()).expect("catalog serializes")
}

/// Parses a JSON array of platform records (the format written by
/// [`catalog_json`]).
pub fn platforms_from_json(json: &str) -> Result<Vec<Platform>, serde_json::Error> {
    serde_json::from_str(json)
}

/// Parses a single platform record.
pub fn platform_from_json(json: &str) -> Result<Platform, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Precision;

    #[test]
    fn catalog_round_trips() {
        let json = catalog_json();
        let back = platforms_from_json(&json).unwrap();
        assert_eq!(back, all_platforms());
        assert_eq!(back.len(), 12);
    }

    #[test]
    fn custom_platform_loads_and_models() {
        // A user-defined record: take the Titan, rename it, halve the cap.
        let mut p = crate::table1::platform(crate::record::PlatformId::GtxTitan);
        p.name = "MyAccelerator".to_string();
        p.usable_power /= 2.0;
        let json = serde_json::to_string(&p).unwrap();
        let loaded = platform_from_json(&json).unwrap();
        assert_eq!(loaded.name, "MyAccelerator");
        let m = loaded.machine_params(Precision::Single).unwrap();
        assert_eq!(m.cap.watts(), 82.0);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(platforms_from_json("{not json").is_err());
        assert!(platform_from_json("[]").is_err());
    }

    #[test]
    fn json_contains_si_values_not_paper_units() {
        // The serialized form is SI (J, flop/s), not pJ/Gflop — check one
        // known constant appears in exponent form.
        let json = catalog_json();
        assert!(json.contains("\"GTX Titan\""));
        // ε_s = 30.4 pJ = 3.04e-11 J.
        assert!(json.contains("3.04e-11"), "expected SI-encoded energies");
    }
}
