//! # archline-platforms — the paper's 12 evaluation platforms as data
//!
//! Table I of Choi et al. (IPDPS 2014) summarizes 9 systems / 12 "platforms"
//! (hybrid CPU+GPU parts are evaluated separately): vendor peaks, fitted
//! model constants (`π_1`, `Δπ`, `ε_s`, `ε_d`, `ε_mem`, `ε_L1`, `ε_L2`,
//! `ε_rand`) and the sustained throughputs the microbenchmarks achieved.
//!
//! This crate transcribes that table as typed data and converts it into the
//! model parameters of [`archline_core`] and (via `archline-machine`) into
//! ground-truth specifications for the platform simulator. It also carries
//! the paper's per-platform headline numbers (Fig. 5 annotations) and the
//! Fig. 4 Kolmogorov–Smirnov significance marks, which the reproduction
//! harness validates against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod record;
pub mod table1;

pub use record::{
    CacheCost, EnergyRate, NoiseCalib, PaperHeadline, Platform, PlatformClass, PlatformId,
    Precision, ProcessorKind, QuirkHint, RandomCost, VendorPeaks,
};
pub use catalog::{catalog_json, platform_from_json, platforms_from_json};
pub use table1::{all_platforms, platform};
