//! The reproduction scorecard: every headline claim of the paper, checked
//! programmatically with explicit expected-vs-actual values and a PASS /
//! DEVIATION verdict. `repro scorecard` prints it; EXPERIMENTS.md mirrors
//! it in prose.

use serde::{Deserialize, Serialize};

use archline_core::{crossovers, power_bounding, power_match, EnergyRoofline, Metric};
use archline_microbench::SweepConfig;
use archline_platforms::{all_platforms, platform, PlatformId, Precision};
use archline_stats::pearson;

use crate::context::AnalysisContext;
use crate::fig4;
use crate::render::{sig3, TextTable};

/// One checked claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// Where the claim comes from ("Fig. 1", "§V-C", …).
    pub source: String,
    /// What is claimed.
    pub statement: String,
    /// The paper's value, rendered.
    pub expected: String,
    /// Our value, rendered.
    pub actual: String,
    /// `true` when the reproduction agrees within the stated tolerance.
    pub pass: bool,
}

/// The full scorecard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scorecard {
    /// All checked claims.
    pub claims: Vec<Claim>,
}

impl Scorecard {
    /// Number of passing claims.
    pub fn passed(&self) -> usize {
        self.claims.iter().filter(|c| c.pass).count()
    }

    /// Number of claims checked.
    pub fn total(&self) -> usize {
        self.claims.len()
    }
}

fn model(id: PlatformId) -> EnergyRoofline {
    EnergyRoofline::new(platform(id).machine_params(Precision::Single).expect("single"))
}

/// Computes the scorecard. The Fig. 4 check runs the simulated pipeline
/// with `cfg`; everything else is model-only.
pub fn compute(cfg: &SweepConfig) -> Scorecard {
    compute_with(&AnalysisContext::new(*cfg))
}

/// Computes the scorecard from a shared [`AnalysisContext`]: the Fig. 4
/// check reuses the context's sweep instead of re-running it.
pub fn compute_with(ctx: &AnalysisContext) -> Scorecard {
    let mut claims = Vec::new();
    let mut check = |source: &str, statement: &str, expected: String, actual: String, pass: bool| {
        claims.push(Claim {
            source: source.to_string(),
            statement: statement.to_string(),
            expected,
            actual,
            pass,
        });
    };

    // Pipeline health: did the measure-and-fit sweep survive every
    // platform? A degraded run still produces a scorecard — this claim is
    // what flips to DEVIATION when platforms are corrupted or crash.
    let healthy = ctx.analyses().len();
    let failures = ctx.failures();
    let failed_names = failures
        .iter()
        .map(|f| f.name.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    check(
        "pipeline",
        "all 12 platforms measured and fitted",
        "12 of 12".into(),
        if failures.is_empty() {
            format!("{healthy} of 12")
        } else {
            format!("{healthy} of 12 (DEGRADED: {failed_names})")
        },
        failures.is_empty() && healthy == 12,
    );

    // Fig. 5 headline ladder.
    let titan = model(PlatformId::GtxTitan);
    let titan_eff = titan.peak_energy_eff() / 1e9;
    check(
        "Fig. 5",
        "GTX Titan peak energy-efficiency",
        "16 Gflop/J".into(),
        format!("{} Gflop/J", sig3(titan_eff)),
        (titan_eff - 16.0).abs() < 1.0,
    );
    let desktop_eff = model(PlatformId::DesktopCpu).peak_energy_eff() / 1e6;
    check(
        "Fig. 5",
        "Desktop CPU peak energy-efficiency",
        "620 Mflop/J".into(),
        format!("{} Mflop/J", sig3(desktop_eff)),
        (desktop_eff - 620.0).abs() < 30.0,
    );

    // Fig. 1.
    let titan_params = platform(PlatformId::GtxTitan).machine_params(Precision::Single).unwrap();
    let arndale_params =
        platform(PlatformId::ArndaleGpu).machine_params(Precision::Single).unwrap();
    let rep = power_match(&arndale_params, titan_params.peak_power());
    check(
        "Fig. 1",
        "Arndale GPUs matching the Titan's peak power",
        "47 (figure) / 42 (text)".into(),
        rep.n.to_string(),
        (46..=47).contains(&rep.n),
    );
    let bw_adv = rep.model().peak_bandwidth() / titan.peak_bandwidth();
    check(
        "Fig. 1",
        "array bandwidth advantage below I≈4",
        "up to 1.6x".into(),
        format!("{}x", sig3(bw_adv)),
        (1.5..1.8).contains(&bw_adv),
    );
    let peak_ratio = rep.model().peak_perf() / titan.peak_perf();
    check(
        "Fig. 1",
        "array peak-performance sacrifice",
        "< 1/2".into(),
        format!("{}x", sig3(peak_ratio)),
        peak_ratio < 0.5,
    );
    let arndale = model(PlatformId::ArndaleGpu);
    let cross = crossovers(&arndale, &titan, Metric::EnergyEfficiency, 0.125, 512.0, 512);
    let cross_i = cross.first().map(|x| x.intensity).unwrap_or(f64::NAN);
    check(
        "Fig. 1",
        "Arndale/Titan flop-per-Joule parity band",
        "\"match\" up to I = 4".into(),
        format!("tie at I = {}; within 20% to I = 4", sig3(cross_i)),
        (1.0..=4.0).contains(&cross_i)
            && arndale.energy_eff_at(4.0) / titan.energy_eff_at(4.0) > 0.8,
    );

    // §V-C streaming energy.
    let stream = |id| model(id).streaming_energy_per_byte() * 1e12;
    let (phi_e, titan_e, arn_e) = (
        stream(PlatformId::XeonPhi),
        stream(PlatformId::GtxTitan),
        stream(PlatformId::ArndaleGpu),
    );
    check(
        "§V-C",
        "streaming energy/byte ordering and values",
        "Arndale 671 < Titan 782 < Phi 1130 pJ/B".into(),
        format!("{} < {} < {} pJ/B", sig3(arn_e), sig3(titan_e), sig3(phi_e)),
        (arn_e - 671.0).abs() < 5.0
            && (titan_e - 782.0).abs() < 5.0
            && (phi_e - 1130.0).abs() < 20.0,
    );
    let over_half = all_platforms()
        .iter()
        .filter(|p| p.machine_params(Precision::Single).unwrap().const_power_fraction() > 0.5)
        .count();
    check(
        "§V-C",
        "platforms with π1 above half of max power",
        "7 of 12".into(),
        format!("{over_half} of 12"),
        over_half == 7,
    );
    let ordered = crate::platforms_by_peak_efficiency();
    let fracs: Vec<f64> = ordered
        .iter()
        .map(|p| p.machine_params(Precision::Single).unwrap().const_power_fraction())
        .collect();
    let effs: Vec<f64> = ordered
        .iter()
        .map(|p| {
            EnergyRoofline::new(p.machine_params(Precision::Single).unwrap())
                .peak_energy_eff()
                .ln()
        })
        .collect();
    let corr = pearson(&fracs, &effs);
    check(
        "§V-C",
        "π1-fraction vs peak-efficiency correlation",
        "about -0.6".into(),
        sig3(corr),
        (-0.75..=-0.45).contains(&corr),
    );

    // §V-D power bounding.
    let budget = titan_params.const_power + titan_params.cap.watts() / 8.0;
    let out = power_bounding(&titan_params, &arndale_params, budget, 0.25);
    check(
        "§V-D",
        "Titan slowdown at Δπ/8, I = 0.25",
        "approximately 0.31x".into(),
        format!("{}x", sig3(out.big_node_slowdown)),
        (out.big_node_slowdown - 0.31).abs() < 0.02,
    );
    check(
        "§V-D",
        "Arndale boards in a 140 W budget and their speedup",
        "23 boards, ~2.8x".into(),
        format!("{} boards, {}x", out.small_nodes, sig3(out.ensemble_speedup)),
        out.small_nodes == 23 && (2.3..=3.0).contains(&out.ensemble_speedup),
    );

    // Conclusions: Phi random access.
    let phi_rand = platform(PlatformId::XeonPhi).random.unwrap().energy_per_access;
    let min_other = all_platforms()
        .iter()
        .filter(|p| p.id != PlatformId::XeonPhi)
        .filter_map(|p| p.random.map(|r| r.energy_per_access))
        .fold(f64::INFINITY, f64::min);
    check(
        "Concl.",
        "Phi random-access energy an order below all others",
        ">= ~10x cheaper".into(),
        format!("{}x cheaper", sig3(min_other / phi_rand)),
        min_other / phi_rand > 8.5,
    );

    // Fig. 4 star pattern (simulated pipeline).
    let fig4_report = fig4::compute_with(ctx);
    let agreement = fig4_report.star_agreement();
    check(
        "Fig. 4",
        "K-S significance pattern (capped vs uncapped)",
        "7 platforms starred".into(),
        format!("{agreement}/12 platforms agree (Phi, APU GPU deviate)"),
        agreement >= 10,
    );
    let dominated = fig4_report
        .rows
        .iter()
        .filter(|r| r.capped_median_abs() <= r.uncapped_median_abs() + 0.02)
        .count();
    check(
        "Fig. 4",
        "capped model dominates uncapped on every platform",
        "12 of 12".into(),
        format!("{dominated} of 12"),
        dominated == 12,
    );

    Scorecard { claims }
}

/// Renders the scorecard.
pub fn render(card: &Scorecard) -> String {
    let mut t = TextTable::new(vec!["src", "claim", "paper", "reproduced", "verdict"]);
    for c in &card.claims {
        t.row(vec![
            c.source.clone(),
            c.statement.clone(),
            c.expected.clone(),
            c.actual.clone(),
            if c.pass { "PASS" } else { "DEVIATION" }.to_string(),
        ]);
    }
    format!(
        "Reproduction scorecard: {}/{} claims reproduced\n\n{}",
        card.passed(),
        card.total(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fast_config;

    #[test]
    fn every_claim_passes() {
        let card = compute(&fast_config());
        for c in &card.claims {
            assert!(c.pass, "{} — {}: expected {}, got {}", c.source, c.statement, c.expected, c.actual);
        }
        assert!(card.total() >= 12, "{} claims", card.total());
        assert_eq!(card.passed(), card.total());
    }

    #[test]
    fn degraded_sweep_flips_the_health_claim_only() {
        use archline_faults::{FaultClass, FaultPlan};
        let plan = FaultPlan::single(FaultClass::FailRun, 1.0, 9);
        let ctx = AnalysisContext::with_sabotage(
            fast_config(),
            vec![("Desktop CPU".to_string(), plan)],
        );
        let card = compute_with(&ctx);
        let health = card.claims.iter().find(|c| c.source == "pipeline").unwrap();
        assert!(!health.pass);
        assert!(health.actual.contains("Desktop CPU"), "{}", health.actual);
        assert!(render(&card).contains("DEVIATION"));
        // The model-only claims are untouched by a degraded sweep.
        for c in card.claims.iter().filter(|c| ["Fig. 5", "Fig. 1", "§V-D"].contains(&c.source.as_str())) {
            assert!(c.pass, "{}: {}", c.source, c.statement);
        }
    }

    #[test]
    fn render_contains_verdicts() {
        let card = compute(&fast_config());
        let text = render(&card);
        assert!(text.contains("PASS"));
        assert!(text.contains("scorecard"));
    }
}
