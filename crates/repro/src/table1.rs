//! Table I: the full platform summary, regenerated.
//!
//! For every platform we simulate the microbenchmark suite, run the staged
//! fit, and compare each recovered constant with the paper's published
//! value. Absolute agreement is expected by construction (the simulator is
//! seeded with Table I); what this validates is the *measurement and
//! estimation pipeline* — sampling, rail summation, the paper's
//! energy-estimator, the staged nonlinear regression — recovering the
//! constants through realistic noise, caps, and quirks.

use serde::{Deserialize, Serialize};

use archline_fit::{fit_level_cost, fit_random_cost};
use archline_microbench::SweepConfig;

use crate::analysis::PlatformAnalysis;
use crate::context::AnalysisContext;
use crate::render::{sig3, TextTable};

/// A paper value paired with the pipeline's re-fitted estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedValue {
    /// The value Table I publishes (SI units).
    pub paper: f64,
    /// The value our pipeline recovered (SI units).
    pub fitted: f64,
}

impl FittedValue {
    /// Relative error of the fit against the paper value.
    pub fn rel_err(&self) -> f64 {
        (self.fitted - self.paper) / self.paper
    }
}

/// One regenerated Table I row (single precision, plus `ε_d` when
/// supported).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Platform name.
    pub name: String,
    /// Constant power `π_1`, W.
    pub const_power: FittedValue,
    /// Usable power `Δπ`, W.
    pub usable_power: FittedValue,
    /// `ε_s`, J/flop.
    pub eps_single: FittedValue,
    /// Sustained single-precision rate, flop/s.
    pub sustained_single: FittedValue,
    /// `ε_d`, J/flop (None where unsupported).
    pub eps_double: Option<FittedValue>,
    /// `ε_mem`, J/B.
    pub eps_mem: FittedValue,
    /// Sustained DRAM bandwidth, B/s.
    pub sustained_bw: FittedValue,
    /// `ε_L1`, J/B.
    pub eps_l1: Option<FittedValue>,
    /// `ε_L2`, J/B.
    pub eps_l2: Option<FittedValue>,
    /// `ε_rand`, J/access.
    pub eps_rand: Option<FittedValue>,
    /// Capped-fit power RMSE (diagnostic).
    pub power_rmse: f64,
    /// `true` when this row's fit completed but is flagged degraded
    /// (non-converged refinement or heavy outlier rejection).
    #[serde(default)]
    pub degraded: bool,
}

/// A platform the sweep could not fit at all: it has no row, only a cause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedPlatform {
    /// Platform name (Table I spelling).
    pub name: String,
    /// Why the measure-and-fit failed.
    pub reason: String,
}

/// The regenerated table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    /// One row per successfully fitted platform, Fig. 5 panel order.
    pub rows: Vec<Table1Row>,
    /// Platforms with no row because their measure-and-fit failed (empty in
    /// a healthy run).
    #[serde(default)]
    pub degraded: Vec<DegradedPlatform>,
}

/// Regenerates Table I. `include_double` additionally sweeps the
/// double-precision pipeline on platforms that support it (slower).
pub fn compute(cfg: &SweepConfig, include_double: bool) -> Table1Report {
    compute_with(&AnalysisContext::new(*cfg), include_double)
}

/// Regenerates Table I from a shared [`AnalysisContext`] (no re-sweep; the
/// double-precision `ε_d` sweeps are memoized on the context too).
pub fn compute_with(ctx: &AnalysisContext, include_double: bool) -> Table1Report {
    let analyses = ctx.analyses();
    let rows = analyses
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let eps_double = if include_double { ctx.doubles()[i] } else { None };
            row_for(a, eps_double)
        })
        .collect();
    let degraded = ctx
        .failures()
        .iter()
        .map(|f| DegradedPlatform { name: f.name.clone(), reason: f.error.clone() })
        .collect();
    Table1Report { rows, degraded }
}

fn row_for(a: &PlatformAnalysis, eps_double: Option<FittedValue>) -> Table1Row {
    let p = &a.platform;
    let capped = &a.fit.capped;
    let pi1 = capped.const_power;

    let mut eps_l1 = None;
    let mut eps_l2 = None;
    for (name, set) in &a.suite.levels {
        let (_bw, eps) = fit_level_cost(&set.runs, pi1);
        let fitted = FittedValue {
            paper: match name.as_str() {
                "L1" => p.l1.map(|c| c.energy).unwrap_or(f64::NAN),
                _ => p.l2.map(|c| c.energy).unwrap_or(f64::NAN),
            },
            fitted: eps,
        };
        match name.as_str() {
            "L1" => eps_l1 = Some(fitted),
            _ => eps_l2 = Some(fitted),
        }
    }

    let eps_rand = a.suite.random.as_ref().and_then(|set| {
        let (_rate, eps) = fit_random_cost(&set.runs, pi1);
        p.random.map(|r| FittedValue { paper: r.energy_per_access, fitted: eps })
    });

    Table1Row {
        name: p.name.clone(),
        const_power: FittedValue { paper: p.const_power, fitted: pi1 },
        usable_power: FittedValue { paper: p.usable_power, fitted: capped.cap.watts() },
        eps_single: FittedValue { paper: p.flop_single.energy, fitted: capped.energy_per_flop },
        sustained_single: FittedValue {
            paper: p.flop_single.rate,
            fitted: a.fit.observed_flops,
        },
        eps_double,
        eps_mem: FittedValue { paper: p.mem.energy, fitted: capped.energy_per_byte },
        sustained_bw: FittedValue { paper: p.mem.rate, fitted: a.fit.observed_bw },
        eps_l1,
        eps_l2,
        eps_rand,
        power_rmse: a.fit.capped_diag.power_rmse,
        degraded: a.fit.capped_diag.degraded,
    }
}

/// Renders the regenerated table (paper value → fitted value per cell).
pub fn render(report: &Table1Report) -> String {
    let mut t = TextTable::new(vec![
        "Platform",
        "pi1 W",
        "dpi W",
        "eps_s pJ",
        "(Gflop/s)",
        "eps_d pJ",
        "eps_mem pJ",
        "(GB/s)",
        "eps_L1 pJ",
        "eps_L2 pJ",
        "eps_rand nJ",
        "P rmse",
    ]);
    let cell = |v: &FittedValue, scale: f64| -> String {
        format!("{}->{}", sig3(v.paper / scale), sig3(v.fitted / scale))
    };
    let opt = |v: &Option<FittedValue>, scale: f64| -> String {
        v.as_ref().map_or("-".to_string(), |v| cell(v, scale))
    };
    for r in &report.rows {
        t.row(vec![
            if r.degraded { format!("{} [DEGRADED]", r.name) } else { r.name.clone() },
            cell(&r.const_power, 1.0),
            cell(&r.usable_power, 1.0),
            cell(&r.eps_single, 1e-12),
            cell(&r.sustained_single, 1e9),
            opt(&r.eps_double, 1e-12),
            cell(&r.eps_mem, 1e-12),
            cell(&r.sustained_bw, 1e9),
            opt(&r.eps_l1, 1e-12),
            opt(&r.eps_l2, 1e-12),
            opt(&r.eps_rand, 1e-9),
            format!("{:.3}", r.power_rmse),
        ]);
    }
    let mut out =
        format!("Table I (paper -> re-fitted through the simulated pipeline)\n\n{}", t.render());
    if !report.degraded.is_empty() {
        out.push_str("\nDEGRADED platforms (measure-and-fit failed; no row above):\n");
        for d in &report.degraded {
            out.push_str(&format!("  {} — {}\n", d.name, d.reason));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fast_config;

    #[test]
    fn pipeline_recovers_table1_within_tolerance() {
        use archline_core::EnergyRoofline;
        use archline_platforms::{all_platforms, Precision};

        let cfg = fast_config();
        let report = compute(&cfg, false);
        assert_eq!(report.rows.len(), 12);
        let records = all_platforms();
        for r in &report.rows {
            // The sustained peak the capped machine can actually reach may
            // sit below the published sustained rate when Δπ < π_flop (the
            // NUC GPU: Δπ/ε_s ≈ 233 Gflop/s < the published 268 Gflop/s) —
            // compare against the model-implied achievable peak over the
            // sweep range.
            let rec = records.iter().find(|p| p.name == r.name).expect("record");
            let truth = EnergyRoofline::new(rec.machine_params(Precision::Single).unwrap());
            let achievable_flops = truth.perf_at(cfg.intensity_hi);
            let achievable_bw = truth.perf_at(cfg.intensity_lo) / cfg.intensity_lo;
            let rel_f = (r.sustained_single.fitted - achievable_flops) / achievable_flops;
            let rel_b = (r.sustained_bw.fitted - achievable_bw) / achievable_bw;
            assert!(rel_f.abs() < 0.06, "{}: flops {:?} vs achievable {achievable_flops}", r.name, r.sustained_single);
            assert!(rel_b.abs() < 0.06, "{}: bw {:?} vs achievable {achievable_bw}", r.name, r.sustained_bw);
            // π_1 and Δπ trade off inside the plateau; on quirky platforms
            // (where the paper's own fit landed *below idle power*) allow a
            // wider individual band but require their sum to stay tight.
            let pi1_tol = match r.name.as_str() {
                "NUC GPU" | "Arndale GPU" => 0.30,
                _ => 0.10,
            };
            assert!(
                r.const_power.rel_err().abs() < pi1_tol,
                "{}: π1 {:?}",
                r.name,
                r.const_power
            );
            let max_power_paper = r.const_power.paper + r.usable_power.paper;
            let max_power_fitted = r.const_power.fitted + r.usable_power.fitted;
            let sum_err = (max_power_fitted - max_power_paper) / max_power_paper;
            // The Xeon Phi's cap binds over a ~0.1-octave sliver, so its
            // fitted Δπ is weakly identified; everywhere else the plateau
            // pins π1 + Δπ tightly.
            let sum_tol = if r.name == "Xeon Phi" { 0.35 } else { 0.08 };
            assert!(sum_err.abs() < sum_tol, "{}: π1+Δπ {max_power_fitted} vs {max_power_paper}", r.name);
            assert!(r.eps_mem.rel_err().abs() < 0.25, "{}: ε_mem {:?}", r.name, r.eps_mem);
            if let Some(l1) = &r.eps_l1 {
                assert!(l1.rel_err().abs() < 0.30, "{}: ε_L1 {:?}", r.name, l1);
            }
            if let Some(rand) = &r.eps_rand {
                assert!(rand.rel_err().abs() < 0.30, "{}: ε_rand {:?}", r.name, rand);
            }
        }
    }

    #[test]
    fn double_precision_constants_recovered_where_supported() {
        let cfg = SweepConfig { points: 17, target_secs: 0.05, level_runs: 1, random_runs: 1, ..fast_config() };
        let report = compute(&cfg, true);
        let mut checked = 0;
        for r in &report.rows {
            match &r.eps_double {
                Some(v) => {
                    // The GTX 580 carries the noisiest calibration
                    // (σ_power = 9 %), which the small double-precision
                    // sweep cannot average away; allow it a wider band.
                    let tol = if r.name == "GTX 580" { 0.55 } else { 0.30 };
                    assert!(
                        v.rel_err().abs() < tol,
                        "{}: ε_d {:?} ({}% off)",
                        r.name,
                        v,
                        v.rel_err() * 100.0
                    );
                    checked += 1;
                }
                None => assert!(
                    ["NUC GPU", "APU GPU", "Arndale GPU"].contains(&r.name.as_str()),
                    "{} should support double",
                    r.name
                ),
            }
        }
        assert_eq!(checked, 9, "nine platforms support double precision");
    }

    #[test]
    fn degraded_platforms_render_as_a_footer() {
        use archline_faults::{FaultClass, FaultPlan};
        let plan = FaultPlan::single(FaultClass::FailRun, 1.0, 5);
        let ctx = AnalysisContext::with_sabotage(
            fast_config(),
            vec![("NUC GPU".to_string(), plan)],
        );
        let report = compute_with(&ctx, false);
        assert_eq!(report.rows.len(), 11);
        assert_eq!(report.degraded.len(), 1);
        let text = render(&report);
        assert!(text.contains("DEGRADED"));
        assert!(text.contains("NUC GPU"));
        assert!(text.contains("at least 4"), "reason carried through:\n{text}");
    }

    #[test]
    fn render_contains_all_platforms() {
        let report = compute(&fast_config(), false);
        let text = render(&report);
        for name in ["GTX Titan", "Desktop CPU", "Arndale GPU"] {
            assert!(text.contains(name), "missing {name}");
        }
        // CSV-able too.
        assert!(text.contains("->"));
    }
}
