//! §V-D: power bounding — a GTX Titan node capped to half power versus an
//! array of Arndale GPUs matched to the same budget.

use serde::{Deserialize, Serialize};

use archline_core::{power_bounding, PowerBoundingOutcome};
use archline_platforms::{platform, PlatformId, Precision};

use crate::render::sig3;

/// The §V-D report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectionVdReport {
    /// The study intensity (paper: 0.25 flop:Byte — SpMV-like).
    pub intensity: f64,
    /// The per-node power budget, W (paper: ≈140 W, i.e. the Titan at
    /// `Δπ/8`).
    pub budget: f64,
    /// The comparison outcome.
    pub outcome: PowerBoundingOutcome,
}

/// Computes the §V-D comparison from a shared
/// [`crate::context::AnalysisContext`] (model-only; uniform artifact API).
pub fn compute_with(_ctx: &crate::context::AnalysisContext) -> SectionVdReport {
    compute()
}

/// Computes the §V-D power-bounding comparison.
pub fn compute() -> SectionVdReport {
    let titan = platform(PlatformId::GtxTitan).machine_params(Precision::Single).expect("single");
    let arndale =
        platform(PlatformId::ArndaleGpu).machine_params(Precision::Single).expect("single");
    // "reduce per-node power by half, to 140 Watts per node … a power cap
    // setting of Δπ/8": π_1 + Δπ/8 = 123 + 20.5 = 143.5 W.
    let budget = titan.const_power + titan.cap.watts() / 8.0;
    let intensity = 0.25;
    SectionVdReport { intensity, budget, outcome: power_bounding(&titan, &arndale, budget, intensity) }
}

/// Renders the comparison.
pub fn render(report: &SectionVdReport) -> String {
    let o = &report.outcome;
    format!(
        "§V-D: power bounding at {} W per node, I = {} flop:Byte\n\n\
         GTX Titan capped to the budget: {} Gflop/s ({}x of its default-cap performance)\n\
         Arndale GPU array in the same budget: {} boards, {} Gflop/s\n\
         Array speedup over the capped Titan: {}x\n\
         (paper: ~0.31x Titan slowdown; 23 boards; ~2.8x speedup — we compute {}x\n\
          from the published Table I constants; same direction and magnitude)\n",
        sig3(report.budget),
        sig3(report.intensity),
        sig3(o.big_node_perf / 1e9),
        sig3(o.big_node_slowdown),
        o.small_nodes,
        sig3(o.ensemble_perf / 1e9),
        sig3(o.ensemble_speedup),
        sig3(o.ensemble_speedup),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_section_vd_numbers() {
        let r = compute();
        assert!((r.budget - 143.5).abs() < 0.5);
        assert!((r.outcome.big_node_slowdown - 0.31).abs() < 0.02, "{}", r.outcome.big_node_slowdown);
        assert_eq!(r.outcome.small_nodes, 23);
        assert!(
            (2.3..=3.0).contains(&r.outcome.ensemble_speedup),
            "{}",
            r.outcome.ensemble_speedup
        );
    }

    #[test]
    fn graceful_degradation_claim() {
        // "a lower power grainsize, combined with a compute building block
        // having a lower π_1, may lead to more graceful degradation under a
        // system power bound": the bounded-case advantage (≈2.6×) exceeds
        // the unbounded best case (≈1.6×, Fig. 1).
        let r = compute();
        assert!(r.outcome.ensemble_speedup > 1.6);
    }

    #[test]
    fn render_names_both_systems() {
        let text = render(&compute());
        assert!(text.contains("GTX Titan"));
        assert!(text.contains("Arndale GPU"));
        assert!(text.contains("23"));
    }
}
