//! # archline-repro — regenerating the paper's tables and figures
//!
//! One module per artifact of the paper's evaluation (Choi et al., IPDPS
//! 2014), each with a `compute` entry point returning a serializable report
//! and a text renderer that prints the same rows/series the paper shows:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table I — platform summary, paper vs. re-fitted constants |
//! | [`fig1`]  | Fig. 1 — GTX Titan vs. Arndale GPU (+ power-matched array) |
//! | [`fig4`]  | Fig. 4 — capped vs. uncapped error distributions + K-S tests |
//! | [`fig5`]  | Fig. 5 — normalized power vs. intensity, 12 platforms |
//! | [`fig6`]  | Fig. 6 — power under caps `Δπ/k`, `k ∈ {1,2,4,8}` |
//! | [`fig7`]  | Fig. 7a/7b — performance and energy-efficiency under caps |
//! | [`section_vc`] | §V-C — streaming energy/byte example; `π_1` fraction vs. efficiency correlation |
//! | [`section_vd`] | §V-D — power bounding: capped Titan vs. Arndale array |
//! | [`ext`] | extension analyses beyond the paper (ablation, network, DVFS) |
//!
//! The `repro` binary exposes each as a subcommand; `repro all` regenerates
//! everything (see EXPERIMENTS.md at the repository root for the recorded
//! paper-vs-measured comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod artifacts;
pub mod context;
pub mod ext;
pub mod failure;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod plot;
pub mod render;
pub mod scorecard;
pub mod section_vc;
pub mod section_vd;
pub mod table1;

use archline_core::EnergyRoofline;
use archline_platforms::{all_platforms, Platform, Precision};

pub use artifacts::{is_artifact, run_artifact, ARTIFACTS};
pub use context::AnalysisContext;
pub use failure::{panic_message, ArtifactError, PlatformFailure};

/// The 12 platforms ordered by decreasing peak energy-efficiency — the
/// panel order of Figs. 5–7 (GTX Titan first, Desktop CPU last).
pub fn platforms_by_peak_efficiency() -> Vec<Platform> {
    let mut ps = all_platforms();
    ps.sort_by(|a, b| {
        let ea = peak_eff(a);
        let eb = peak_eff(b);
        eb.partial_cmp(&ea).expect("finite efficiencies")
    });
    ps
}

fn peak_eff(p: &Platform) -> f64 {
    EnergyRoofline::new(p.machine_params(Precision::Single).expect("single precision"))
        .peak_energy_eff()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_order_matches_fig5_panels() {
        let names: Vec<String> =
            platforms_by_peak_efficiency().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "GTX Titan",
                "GTX 680",
                "Xeon Phi",
                "NUC GPU",
                "Arndale GPU",
                "APU GPU",
                "GTX 580",
                "NUC CPU",
                "PandaBoard ES",
                "Arndale CPU",
                "APU CPU",
                "Desktop CPU",
            ]
        );
    }
}
