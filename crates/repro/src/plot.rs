//! Minimal ASCII line plots for terminal rendering of the figures.
//!
//! The paper's figures are log-x line charts with overlaid measurement
//! dots; this renderer draws the same shape in a character grid so `repro`
//! output is inspectable without a plotting stack.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Glyph used for this series' points.
    pub glyph: char,
    /// Label shown in the legend.
    pub label: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(glyph: char, label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { glyph, label: label.into(), points }
    }
}

/// Renders series into a `width × height` character grid with a log-2
/// x-axis (matching the paper's intensity axes) and a linear y-axis.
/// Later series overdraw earlier ones where cells collide.
///
/// # Panics
/// Panics if dimensions are degenerate or no finite positive-x points
/// exist.
pub fn ascii_plot(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "plot too small");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| *x > 0.0 && x.is_finite() && y.is_finite())
        .collect();
    assert!(!pts.is_empty(), "nothing to plot");
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &pts {
        x_lo = x_lo.min(*x);
        x_hi = x_hi.max(*x);
        y_lo = y_lo.min(*y);
        y_hi = y_hi.max(*y);
    }
    if y_hi == y_lo {
        y_hi = y_lo + 1.0;
    }
    if x_hi == x_lo {
        x_hi = x_lo * 2.0;
    }
    let (lx_lo, lx_hi) = (x_lo.log2(), x_hi.log2());

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            if !(x > 0.0 && x.is_finite() && y.is_finite()) {
                continue;
            }
            let cx = ((x.log2() - lx_lo) / (lx_hi - lx_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = s.glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{y_hi:>9.3} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..height - 1] {
        out.push_str("          │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{y_lo:>9.3} ┤"));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str(&format!(
        "          └{}\n           I = {:.3} … {:.3} (log2)\n",
        "─".repeat(width),
        x_lo,
        x_hi
    ));
    for s in series {
        out.push_str(&format!("           {} {}\n", s.glyph, s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        (0..40).map(|k| 2f64.powf(k as f64 / 4.0 - 3.0)).map(|x| (x, f(x))).collect()
    }

    #[test]
    fn renders_expected_dimensions() {
        let s = Series::new('*', "rising", curve(|x| x.log2()));
        let plot = ascii_plot(&[s], 60, 12);
        let lines: Vec<&str> = plot.lines().collect();
        // 12 grid rows + axis + x-label + 1 legend line.
        assert_eq!(lines.len(), 12 + 2 + 1);
        assert!(lines.iter().any(|l| l.contains('*')));
        assert!(plot.contains("rising"));
    }

    #[test]
    fn monotone_series_fills_corners() {
        let s = Series::new('o', "mono", curve(|x| x.log2()));
        let plot = ascii_plot(&[s], 40, 8);
        let lines: Vec<&str> = plot.lines().collect();
        // Max of the series lands on the top row, min on the bottom row.
        assert!(lines[0].contains('o'), "{plot}");
        assert!(lines[7].contains('o'), "{plot}");
    }

    #[test]
    fn two_series_both_present() {
        let a = Series::new('T', "titan", curve(|x| (x).min(16.0)));
        let b = Series::new('A', "arndale", curve(|x| (x * 0.2).min(2.0)));
        let plot = ascii_plot(&[a, b], 64, 10);
        assert!(plot.contains('T'));
        assert!(plot.contains('A'));
        assert!(plot.contains("titan"));
        assert!(plot.contains("arndale"));
    }

    #[test]
    fn constant_series_handled() {
        let s = Series::new('=', "flat", curve(|_| 1.0));
        let plot = ascii_plot(&[s], 32, 5);
        assert!(plot.contains('='));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_dimensions_rejected() {
        let s = Series::new('x', "s", vec![(1.0, 1.0)]);
        let _ = ascii_plot(&[s], 4, 2);
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_series_rejected() {
        let s = Series::new('x', "s", vec![]);
        let _ = ascii_plot(&[s], 32, 6);
    }
}
