//! Shared per-platform analysis: simulate the microbenchmark suite and fit
//! both models. Table I, Fig. 4, and Fig. 5 all consume this.

use serde::{Deserialize, Serialize};

use archline_fit::{fit_platform, FitReport};
use archline_machine::{spec_for, Engine, PlatformSpec};
use archline_microbench::{run_suite, SimulatedSuite, SweepConfig};
use archline_par::parallel_map;
use archline_platforms::{Platform, Precision};

use crate::platforms_by_peak_efficiency;

/// Everything measured and fitted for one platform at single precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformAnalysis {
    /// The Table I record.
    pub platform: Platform,
    /// Ground-truth simulator spec the measurements came from.
    pub spec: PlatformSpec,
    /// The simulated measurement suite.
    pub suite: SimulatedSuite,
    /// Capped + uncapped fits to the DRAM intensity sweep.
    pub fit: FitReport,
}

/// Runs the suite and fit for every platform (in Fig. 5 panel order),
/// concurrently across platforms.
pub fn analyze_all(cfg: &SweepConfig) -> Vec<PlatformAnalysis> {
    let engine = Engine::default();
    let platforms = platforms_by_peak_efficiency();
    parallel_map(&platforms, |platform| {
        let spec = spec_for(platform, Precision::Single);
        let suite = run_suite(&spec, cfg, &engine);
        let fit = fit_platform(&suite.dram);
        PlatformAnalysis { platform: platform.clone(), spec, suite, fit }
    })
}

/// A smaller sweep for tests and `repro --fast`.
pub fn fast_config() -> SweepConfig {
    SweepConfig { points: 33, target_secs: 0.08, level_runs: 2, random_runs: 2, ..Default::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzes_all_twelve_platforms() {
        let all = analyze_all(&fast_config());
        assert_eq!(all.len(), 12);
        assert_eq!(all[0].platform.name, "GTX Titan");
        for a in &all {
            assert_eq!(a.suite.dram.len(), fast_config().points);
            assert!(a.fit.capped_diag.power_rmse < 0.25, "{}: {:?}", a.platform.name, a.fit.capped_diag);
        }
    }
}
