//! Shared per-platform analysis: simulate the microbenchmark suite and fit
//! both models. Table I, Fig. 4, and Fig. 5 all consume this.
//!
//! [`analyze_outcome`] is the failure-isolating entry point: each
//! platform's measure-and-fit runs behind `catch_unwind`, so one corrupt or
//! crashing platform degrades to a [`PlatformFailure`] record instead of
//! taking the whole sweep down. Fault injection for chaos/degradation
//! testing hooks in here too: a sabotage plan corrupts the chosen
//! platform's DRAM sweep before fitting, and that platform is fitted with
//! the robust policy ([`FitOptions::robust`]).

use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use archline_faults::FaultPlan;
use archline_fit::{try_fit_platform, FitError, FitOptions, FitReport};
use archline_machine::{spec_for, Engine, PlatformSpec};
use archline_microbench::{run_suite, SimulatedSuite, SweepConfig};
use archline_obs::{self as obs, field};
use archline_par::parallel_map;
use archline_platforms::{Platform, Precision};

use crate::failure::{panic_message, PlatformFailure};
use crate::platforms_by_peak_efficiency;

/// Everything measured and fitted for one platform at single precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformAnalysis {
    /// The Table I record.
    pub platform: Platform,
    /// Ground-truth simulator spec the measurements came from.
    pub spec: PlatformSpec,
    /// The simulated measurement suite.
    pub suite: SimulatedSuite,
    /// Capped + uncapped fits to the DRAM intensity sweep.
    pub fit: FitReport,
}

/// Runs the suite and fit for every platform (in Fig. 5 panel order),
/// concurrently across platforms.
///
/// # Panics
/// Panics if any platform fails to fit; use [`analyze_outcome`] where
/// partial failure must be survivable.
pub fn analyze_all(cfg: &SweepConfig) -> Vec<PlatformAnalysis> {
    let (healthy, failures) = analyze_outcome(cfg, &[]);
    if let Some(first) = failures.first() {
        panic!("{first}");
    }
    healthy
}

/// Runs the suite and fit for every platform with per-platform failure
/// isolation, optionally corrupting named platforms' DRAM sweeps with
/// seeded fault plans (those platforms are fitted with the robust policy).
///
/// Returns the successfully analyzed platforms (in Fig. 5 panel order) and
/// a failure record per platform that could not be fitted.
pub fn analyze_outcome(
    cfg: &SweepConfig,
    sabotage: &[(String, FaultPlan)],
) -> (Vec<PlatformAnalysis>, Vec<PlatformFailure>) {
    let engine = Engine::default();
    let platforms = platforms_by_peak_efficiency();
    let results = parallel_map(&platforms, |platform| {
        let plan = sabotage.iter().find(|(name, _)| *name == platform.name).map(|(_, p)| p);
        let _span = obs::span_with(
            obs::Level::Debug,
            "repro",
            "platform",
            &[field("name", platform.name.clone()), field("sabotaged", plan.is_some())],
        );
        match catch_unwind(AssertUnwindSafe(|| analyze_one(platform, cfg, &engine, plan))) {
            Ok(Ok(analysis)) => Ok(analysis),
            Ok(Err(e)) => Err(PlatformFailure {
                name: platform.name.clone(),
                error: e.to_string(),
                panicked: false,
            }),
            Err(payload) => Err(PlatformFailure {
                name: platform.name.clone(),
                error: panic_message(payload),
                panicked: true,
            }),
        }
    });
    let mut healthy = Vec::new();
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(a) => healthy.push(a),
            Err(f) => {
                obs::emit(
                    obs::Level::Debug,
                    "repro",
                    "platform_failed",
                    &[field("name", f.name.clone()), field("panicked", f.panicked)],
                );
                failures.push(f);
            }
        }
    }
    (healthy, failures)
}

fn analyze_one(
    platform: &Platform,
    cfg: &SweepConfig,
    engine: &Engine,
    plan: Option<&FaultPlan>,
) -> Result<PlatformAnalysis, FitError> {
    let spec = spec_for(platform, Precision::Single);
    let mut suite = run_suite(&spec, cfg, engine);
    let opts = match plan {
        Some(plan) => {
            let runs = std::mem::take(&mut suite.dram.runs);
            suite.dram.runs = plan.apply_to_runs(runs);
            FitOptions::robust()
        }
        None => FitOptions::default(),
    };
    let fit = try_fit_platform(&suite.dram, &opts)?;
    Ok(PlatformAnalysis { platform: platform.clone(), spec, suite, fit })
}

/// A smaller sweep for tests and `repro --fast`.
pub fn fast_config() -> SweepConfig {
    SweepConfig { points: 33, target_secs: 0.08, level_runs: 2, random_runs: 2, ..Default::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archline_faults::{FaultClass, FaultPlan};

    #[test]
    fn analyzes_all_twelve_platforms() {
        let all = analyze_all(&fast_config());
        assert_eq!(all.len(), 12);
        assert_eq!(all[0].platform.name, "GTX Titan");
        for a in &all {
            assert_eq!(a.suite.dram.len(), fast_config().points);
            assert!(a.fit.capped_diag.power_rmse < 0.25, "{}: {:?}", a.platform.name, a.fit.capped_diag);
        }
    }

    #[test]
    fn sabotaged_platform_degrades_to_a_failure_record() {
        let plan = FaultPlan::single(FaultClass::FailRun, 1.0, 7);
        let (healthy, failures) =
            analyze_outcome(&fast_config(), &[("Arndale GPU".to_string(), plan)]);
        assert_eq!(healthy.len(), 11);
        assert!(healthy.iter().all(|a| a.platform.name != "Arndale GPU"));
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "Arndale GPU");
        assert!(!failures[0].panicked);
        assert!(failures[0].error.contains("at least 4"), "{}", failures[0].error);
    }

    #[test]
    fn moderate_corruption_survives_via_the_robust_fit() {
        // 15% energy spikes: the robust policy rejects them and keeps the
        // platform healthy (constants within loose tolerance of the clean
        // fit's).
        let plan = FaultPlan::single(FaultClass::Spike, 0.15, 11);
        let (healthy, failures) =
            analyze_outcome(&fast_config(), &[("GTX Titan".to_string(), plan)]);
        assert!(failures.is_empty(), "{failures:?}");
        let titan = healthy.iter().find(|a| a.platform.name == "GTX Titan").unwrap();
        assert!(titan.fit.capped_diag.rejected_runs > 0);
        let clean = analyze_all(&fast_config());
        let clean_titan = clean.iter().find(|a| a.platform.name == "GTX Titan").unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(
            rel(titan.fit.capped.const_power, clean_titan.fit.capped.const_power) < 0.25,
            "π1 {} vs clean {}",
            titan.fit.capped.const_power,
            clean_titan.fit.capped.const_power
        );
    }
}
