//! Fig. 6: hypothetical power as the usable power cap shrinks to `Δπ/k`,
//! `k ∈ {1, 2, 4, 8}`, per platform, with regime labels.

use serde::{Deserialize, Serialize};

use archline_core::{power::power_curve, Regime, ThrottleScenario};
use archline_platforms::Precision;

use crate::platforms_by_peak_efficiency;
use crate::render::{sig3, TextTable};

/// One cap setting's curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapCurve {
    /// The reduction factor `k` (1 = "Full").
    pub factor: f64,
    /// Maximum system power at this setting, `π_1 + Δπ/k`, W.
    pub max_power: f64,
    /// `(intensity, power normalized to π_1 + Δπ, regime)` samples.
    pub points: Vec<(f64, f64, Regime)>,
}

/// One platform's panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Panel {
    /// Platform name.
    pub name: String,
    /// Overall power-reduction factor actually achieved at each `k`
    /// (strictly less than `k` because `π_1 > 0`).
    pub achieved_reduction: Vec<(f64, f64)>,
    /// Curves at each cap setting.
    pub curves: Vec<CapCurve>,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Report {
    /// Panels in Fig. 5/6 order.
    pub panels: Vec<Fig6Panel>,
}

/// Regenerates Fig. 6 from a shared [`crate::context::AnalysisContext`].
///
/// Model-only: the context's sweep is not consulted; the entry point exists
/// so every artifact exposes the same context-driven API.
pub fn compute_with(_ctx: &crate::context::AnalysisContext) -> Fig6Report {
    compute()
}

/// Regenerates Fig. 6 (model-only, from Table I constants).
pub fn compute() -> Fig6Report {
    let panels = platforms_by_peak_efficiency()
        .iter()
        .map(|p| {
            let params = p.machine_params(Precision::Single).expect("single");
            let scenario = ThrottleScenario::paper_factors(params);
            let full_cap = params.const_power + params.cap.watts();
            let curves = scenario
                .models()
                .into_iter()
                .map(|(k, model)| CapCurve {
                    factor: k,
                    max_power: params.const_power + params.cap.watts() / k,
                    points: power_curve(&model, 0.25, 128.0, 37)
                        .into_iter()
                        .map(|pt| (pt.intensity, pt.power / full_cap, pt.regime))
                        .collect(),
                })
                .collect();
            Fig6Panel {
                name: p.name.clone(),
                achieved_reduction: scenario.power_reduction(),
                curves,
            }
        })
        .collect();
    Fig6Report { panels }
}

/// Renders the achieved power reductions and a per-panel series sketch.
pub fn render(report: &Fig6Report) -> String {
    let mut t = TextTable::new(vec![
        "Platform",
        "max W (full)",
        "reduction @k=2",
        "@k=4",
        "@k=8",
    ]);
    for p in &report.panels {
        let red = |k: f64| -> String {
            p.achieved_reduction
                .iter()
                .find(|(kk, _)| *kk == k)
                .map(|(_, r)| format!("{}x", sig3(*r)))
                .unwrap_or_default()
        };
        t.row(vec![
            p.name.clone(),
            sig3(p.curves[0].max_power),
            red(2.0),
            red(4.0),
            red(8.0),
        ]);
    }
    let mut out = format!(
        "Fig. 6: power under cap Δπ/k (normalized to full π_1+Δπ)\n\
         Overall power reduction is < k because π_1 > 0:\n\n{}",
        t.render()
    );
    out.push_str("\nCurves at I = 1/4, 2, 16, 128 (power_norm [regime]):\n");
    for p in &report.panels {
        out.push_str(&format!("\n{}\n", p.name));
        for c in &p.curves {
            // lint:allow(float-discipline, reason = "throttle factor is propagated verbatim from the paper_factors literal table, never computed")
            let label = if c.factor == 1.0 { "Full".to_string() } else { format!("1/{}", c.factor as u32) };
            let mut cells = Vec::new();
            for target in [0.25, 2.0, 16.0, 128.0] {
                if let Some((_, pw, reg)) = c
                    .points
                    .iter()
                    .min_by(|a, b| {
                        (a.0.ln() - f64::ln(target))
                            .abs()
                            .partial_cmp(&(b.0.ln() - f64::ln(target)).abs())
                            .expect("finite")
                    })
                {
                    cells.push(format!("{:.2}[{}]", pw, reg.letter()));
                }
            }
            out.push_str(&format!("  {label:<5} {}\n", cells.join("  ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use archline_platforms::{platform, PlatformId};

    #[test]
    fn twelve_panels_with_four_curves() {
        let r = compute();
        assert_eq!(r.panels.len(), 12);
        for p in &r.panels {
            assert_eq!(p.curves.len(), 4);
            assert_eq!(p.curves[0].factor, 1.0);
            assert_eq!(p.curves[3].factor, 8.0);
        }
    }

    #[test]
    fn reducing_cap_reduces_power_by_less_than_k() {
        let r = compute();
        for p in &r.panels {
            for &(k, achieved) in &p.achieved_reduction {
                assert!(achieved <= k + 1e-9, "{}: k={k} achieved={achieved}", p.name);
                if k > 1.0 {
                    assert!(achieved < k, "{}", p.name);
                }
            }
        }
    }

    #[test]
    fn arndale_gpu_has_most_reduction_headroom_phi_apu_least() {
        // Paper: "the Arndale GPU has the most potential to reduce system
        // power by reducing Δπ, whereas the Xeon Phi, APU CPU, and APU GPU
        // platforms have the least."
        let r = compute();
        let reduction_at_8 = |name: &str| -> f64 {
            r.panels
                .iter()
                .find(|p| p.name == name)
                .and_then(|p| p.achieved_reduction.iter().find(|(k, _)| *k == 8.0))
                .map(|(_, v)| *v)
                .expect("platform present")
        };
        let arndale = reduction_at_8("Arndale GPU");
        for other in ["Xeon Phi", "APU CPU", "APU GPU"] {
            assert!(
                arndale > 1.5 * reduction_at_8(other),
                "Arndale {} vs {} {}",
                arndale,
                other,
                reduction_at_8(other)
            );
        }
        // And nobody beats the Arndale GPU.
        for p in &r.panels {
            assert!(reduction_at_8(&p.name) <= arndale + 1e-9, "{}", p.name);
        }
    }

    #[test]
    fn curves_monotone_in_cap() {
        // At any intensity, a tighter cap cannot draw more power.
        let r = compute();
        for p in &r.panels {
            for idx in 0..p.curves[0].points.len() {
                for pair in p.curves.windows(2) {
                    assert!(
                        pair[1].points[idx].1 <= pair[0].points[idx].1 + 1e-9,
                        "{} at I={}",
                        p.name,
                        p.curves[0].points[idx].0
                    );
                }
            }
        }
    }

    #[test]
    fn titan_at_k8_is_140w_per_node() {
        // §V-D: "reduce per-node power by half, to 140 Watts per node …
        // corresponds to a power cap setting of Δπ/8".
        let titan = platform(PlatformId::GtxTitan);
        let _ = titan;
        let r = compute();
        let t = r.panels.iter().find(|p| p.name == "GTX Titan").unwrap();
        let k8 = t.curves.iter().find(|c| c.factor == 8.0).unwrap();
        assert!((k8.max_power - 143.5).abs() < 1.0, "{}", k8.max_power);
    }
}
