//! Shared analysis cache for the artifact pipeline.
//!
//! Almost every artifact starts from the same 12-platform sweep
//! ([`analyze_all`]): simulate the microbenchmark suite, then fit both
//! models. Before this cache existed, `repro all` re-ran that sweep once per
//! artifact. [`AnalysisContext`] memoizes the sweep (and Table I's
//! double-precision variant) behind [`OnceLock`], so any number of artifacts
//! computed against one context share a single sweep — concurrently-arriving
//! callers block on the first computation instead of duplicating it.
//!
//! Each artifact module exposes a `compute_with(&AnalysisContext, ...)`
//! entry point; the original config-only `compute` functions remain as thin
//! wrappers that build a throwaway context.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use archline_fit::fit_platform;
use archline_machine::{spec_for, Engine};
use archline_microbench::{run_suite, SweepConfig};
use archline_par::parallel_map;
use archline_platforms::Precision;

use crate::analysis::{analyze_all, PlatformAnalysis};
use crate::table1::FittedValue;

/// Config-keyed memo of the shared per-platform analyses.
///
/// Construct one per [`SweepConfig`]; the sweep runs lazily on first use and
/// exactly once per context regardless of how many artifacts (or threads)
/// ask for it. `&AnalysisContext` is `Send + Sync`, so artifacts may be
/// computed concurrently against the same context.
#[derive(Debug)]
pub struct AnalysisContext {
    cfg: SweepConfig,
    analyses: OnceLock<Vec<PlatformAnalysis>>,
    doubles: OnceLock<Vec<Option<FittedValue>>>,
    sweep_misses: AtomicUsize,
    sweep_hits: AtomicUsize,
}

impl AnalysisContext {
    /// A context keyed to `cfg`. No work happens until an artifact asks.
    pub fn new(cfg: SweepConfig) -> Self {
        Self {
            cfg,
            analyses: OnceLock::new(),
            doubles: OnceLock::new(),
            sweep_misses: AtomicUsize::new(0),
            sweep_hits: AtomicUsize::new(0),
        }
    }

    /// The sweep configuration this context is keyed to.
    pub fn cfg(&self) -> &SweepConfig {
        &self.cfg
    }

    /// The single-precision 12-platform sweep, computed at most once.
    pub fn analyses(&self) -> &[PlatformAnalysis] {
        if let Some(cached) = self.analyses.get() {
            self.sweep_hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.analyses.get_or_init(|| {
            self.sweep_misses.fetch_add(1, Ordering::Relaxed);
            analyze_all(&self.cfg)
        })
    }

    /// Table I's double-precision `ε_d` column (one slot per platform, in
    /// sweep order; `None` where double precision is unsupported). Also
    /// memoized: only the first caller pays for the extra sweeps.
    pub fn doubles(&self) -> &[Option<FittedValue>] {
        self.doubles.get_or_init(|| {
            let engine = Engine::default();
            parallel_map(self.analyses(), |a| {
                if !a.platform.supports_double() {
                    return None;
                }
                let spec = spec_for(&a.platform, Precision::Double);
                let suite = run_suite(&spec, &self.cfg, &engine);
                let fit = fit_platform(&suite.dram);
                a.platform.flop_double.map(|paper| FittedValue {
                    paper: paper.energy,
                    fitted: fit.capped.energy_per_flop,
                })
            })
        })
    }

    /// How many [`Self::analyses`] calls found the sweep already computed.
    pub fn sweep_hits(&self) -> usize {
        self.sweep_hits.load(Ordering::Relaxed)
    }

    /// How many times the sweep was actually run (1 after any use; the whole
    /// point of the cache is that it never reaches 2).
    pub fn sweep_misses(&self) -> usize {
        self.sweep_misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fast_config;
    use crate::{ext, fig4, fig5, scorecard, table1};

    #[test]
    fn sweep_runs_exactly_once_across_artifacts() {
        let ctx = AnalysisContext::new(fast_config());
        assert_eq!(ctx.sweep_misses(), 0, "lazy until first use");

        let t1 = table1::compute_with(&ctx, false);
        let f4 = fig4::compute_with(&ctx);
        let f5 = fig5::compute_with(&ctx);
        let sc = scorecard::compute_with(&ctx);
        let ab = ext::arndale_ablation_with(&ctx);

        assert_eq!(t1.rows.len(), 12);
        assert_eq!(f4.rows.len(), 12);
        assert_eq!(f5.panels.len(), 12);
        assert!(!sc.claims.is_empty());
        assert!(ab.true_depth > 0.0);
        assert_eq!(ctx.sweep_misses(), 1, "sweep must run exactly once");
        assert!(ctx.sweep_hits() >= 4, "artifacts after the first all hit");
    }

    #[test]
    fn context_results_match_uncached_compute() {
        let cfg = fast_config();
        let ctx = AnalysisContext::new(cfg);
        assert_eq!(table1::compute_with(&ctx, false), table1::compute(&cfg, false));
        assert_eq!(fig4::compute_with(&ctx), fig4::compute(&cfg));
    }

    #[test]
    fn concurrent_first_use_still_sweeps_once() {
        let ctx = AnalysisContext::new(fast_config());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(ctx.analyses().len(), 12);
                });
            }
        });
        assert_eq!(ctx.sweep_misses(), 1);
    }
}
