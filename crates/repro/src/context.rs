//! Shared analysis cache for the artifact pipeline.
//!
//! Almost every artifact starts from the same 12-platform sweep
//! ([`analyze_outcome`]): simulate the microbenchmark suite, then fit both
//! models. Before this cache existed, `repro all` re-ran that sweep once per
//! artifact. [`AnalysisContext`] memoizes the sweep (and Table I's
//! double-precision variant) behind [`OnceLock`], so any number of artifacts
//! computed against one context share a single sweep — concurrently-arriving
//! callers block on the first computation instead of duplicating it.
//!
//! The context also carries the pipeline's **degradation state**: platforms
//! whose measure-and-fit failed (organically or through an injected fault
//! plan) are recorded as [`PlatformFailure`]s instead of aborting the
//! sweep, and [`Self::analyses`] serves the healthy subset. Artifacts mark
//! those platforms degraded rather than crashing.
//!
//! Each artifact module exposes a `compute_with(&AnalysisContext, ...)`
//! entry point; the original config-only `compute` functions remain as thin
//! wrappers that build a throwaway context.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use archline_faults::FaultPlan;
use archline_fit::{try_fit_platform, FitOptions};
use archline_machine::{spec_for, Engine};
use archline_microbench::{run_suite, SweepConfig};
use archline_obs::{self as obs, field, Counter};
use archline_par::parallel_map;
use archline_platforms::Precision;

/// Artifact requests that found the shared sweep already memoized.
static CACHE_HITS: Counter = Counter::new("repro.cache.hits");
/// Artifact requests that had to run the sweep (1 per healthy context).
static CACHE_MISSES: Counter = Counter::new("repro.cache.misses");
/// Approximate memoized payload size (serialized JSON bytes of the healthy
/// analyses), accumulated across contexts.
static CACHE_BYTES: Counter = Counter::new("repro.cache.bytes");

use crate::analysis::{analyze_outcome, PlatformAnalysis};
use crate::failure::PlatformFailure;
use crate::table1::FittedValue;

/// Config-keyed memo of the shared per-platform analyses.
///
/// Construct one per [`SweepConfig`]; the sweep runs lazily on first use and
/// exactly once per context regardless of how many artifacts (or threads)
/// ask for it. `&AnalysisContext` is `Send + Sync`, so artifacts may be
/// computed concurrently against the same context.
#[derive(Debug)]
pub struct AnalysisContext {
    cfg: SweepConfig,
    sabotage: Vec<(String, FaultPlan)>,
    outcome: OnceLock<(Vec<PlatformAnalysis>, Vec<PlatformFailure>)>,
    doubles: OnceLock<Vec<Option<FittedValue>>>,
    sweep_misses: AtomicUsize,
    sweep_hits: AtomicUsize,
}

impl AnalysisContext {
    /// A context keyed to `cfg`. No work happens until an artifact asks.
    pub fn new(cfg: SweepConfig) -> Self {
        Self::with_sabotage(cfg, Vec::new())
    }

    /// A context whose sweep will corrupt the named platforms' DRAM
    /// measurements with the given seeded fault plans (chaos testing and
    /// the `repro --inject` flag). Sabotaged platforms are fitted with the
    /// robust policy; those corrupted past fitability surface in
    /// [`Self::failures`] instead of panicking.
    pub fn with_sabotage(cfg: SweepConfig, sabotage: Vec<(String, FaultPlan)>) -> Self {
        Self {
            cfg,
            sabotage,
            outcome: OnceLock::new(),
            doubles: OnceLock::new(),
            sweep_misses: AtomicUsize::new(0),
            sweep_hits: AtomicUsize::new(0),
        }
    }

    /// The sweep configuration this context is keyed to.
    pub fn cfg(&self) -> &SweepConfig {
        &self.cfg
    }

    fn outcome(&self) -> &(Vec<PlatformAnalysis>, Vec<PlatformFailure>) {
        if let Some(cached) = self.outcome.get() {
            self.sweep_hits.fetch_add(1, Ordering::Relaxed);
            CACHE_HITS.inc();
            return cached;
        }
        self.outcome.get_or_init(|| {
            self.sweep_misses.fetch_add(1, Ordering::Relaxed);
            CACHE_MISSES.inc();
            let _span = obs::span(obs::Level::Debug, "repro", "sweep");
            let outcome = analyze_outcome(&self.cfg, &self.sabotage);
            // Size the memoized payload so traces/metrics show what the
            // cache holds. Sizing means serializing the analyses, which is
            // not free — so unlike plain counters it only runs when
            // something is actually listening (the bytes counter reads 0
            // otherwise).
            let bytes = if obs::enabled(obs::Level::Debug) || obs::profile::profiling() {
                serde_json::to_string(&outcome.0).map(|s| s.len() as u64).unwrap_or(0)
            } else {
                0
            };
            CACHE_BYTES.add(bytes);
            obs::emit(
                obs::Level::Debug,
                "repro",
                "cache_fill",
                &[
                    field("platforms", outcome.0.len()),
                    field("failures", outcome.1.len()),
                    field("bytes", bytes),
                ],
            );
            outcome
        })
    }

    /// The single-precision 12-platform sweep, computed at most once. Only
    /// successfully fitted platforms appear (all 12 in a healthy run); see
    /// [`Self::failures`] for the rest.
    pub fn analyses(&self) -> &[PlatformAnalysis] {
        &self.outcome().0
    }

    /// Platforms whose measure-and-fit failed, with causes. Empty in a
    /// healthy run.
    pub fn failures(&self) -> &[PlatformFailure] {
        &self.outcome().1
    }

    /// Table I's double-precision `ε_d` column (one slot per *healthy*
    /// platform, aligned with [`Self::analyses`]; `None` where double
    /// precision is unsupported or its fit fails). Also memoized: only the
    /// first caller pays for the extra sweeps.
    pub fn doubles(&self) -> &[Option<FittedValue>] {
        self.doubles.get_or_init(|| {
            let engine = Engine::default();
            parallel_map(self.analyses(), |a| {
                if !a.platform.supports_double() {
                    return None;
                }
                let spec = spec_for(&a.platform, Precision::Double);
                let suite = run_suite(&spec, &self.cfg, &engine);
                let fit = try_fit_platform(&suite.dram, &FitOptions::default()).ok()?;
                a.platform.flop_double.map(|paper| FittedValue {
                    paper: paper.energy,
                    fitted: fit.capped.energy_per_flop,
                })
            })
        })
    }

    /// How many [`Self::analyses`]/[`Self::failures`] calls found the sweep
    /// already computed.
    pub fn sweep_hits(&self) -> usize {
        self.sweep_hits.load(Ordering::Relaxed)
    }

    /// How many times the sweep was actually run (1 after any use; the whole
    /// point of the cache is that it never reaches 2).
    pub fn sweep_misses(&self) -> usize {
        self.sweep_misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fast_config;
    use crate::{ext, fig4, fig5, scorecard, table1};
    use archline_faults::FaultClass;

    #[test]
    fn sweep_runs_exactly_once_across_artifacts() {
        let ctx = AnalysisContext::new(fast_config());
        assert_eq!(ctx.sweep_misses(), 0, "lazy until first use");

        let t1 = table1::compute_with(&ctx, false);
        let f4 = fig4::compute_with(&ctx);
        let f5 = fig5::compute_with(&ctx);
        let sc = scorecard::compute_with(&ctx);
        let ab = ext::arndale_ablation_with(&ctx).expect("Arndale healthy");

        assert_eq!(t1.rows.len(), 12);
        assert_eq!(f4.rows.len(), 12);
        assert_eq!(f5.panels.len(), 12);
        assert!(!sc.claims.is_empty());
        assert!(ab.true_depth > 0.0);
        assert_eq!(ctx.sweep_misses(), 1, "sweep must run exactly once");
        assert!(ctx.sweep_hits() >= 4, "artifacts after the first all hit");
    }

    #[test]
    fn context_results_match_uncached_compute() {
        let cfg = fast_config();
        let ctx = AnalysisContext::new(cfg);
        assert_eq!(table1::compute_with(&ctx, false), table1::compute(&cfg, false));
        assert_eq!(fig4::compute_with(&ctx), fig4::compute(&cfg));
    }

    #[test]
    fn concurrent_first_use_still_sweeps_once() {
        let ctx = AnalysisContext::new(fast_config());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(ctx.analyses().len(), 12);
                });
            }
        });
        assert_eq!(ctx.sweep_misses(), 1);
    }

    #[test]
    fn sabotaged_context_serves_the_healthy_subset() {
        let plan = FaultPlan::single(FaultClass::FailRun, 1.0, 3);
        let ctx =
            AnalysisContext::with_sabotage(fast_config(), vec![("Xeon Phi".to_string(), plan)]);
        assert_eq!(ctx.analyses().len(), 11);
        assert_eq!(ctx.failures().len(), 1);
        assert_eq!(ctx.failures()[0].name, "Xeon Phi");
        assert_eq!(ctx.sweep_misses(), 1, "failure path shares the memo");
        // Artifacts over the degraded context still complete.
        let t1 = table1::compute_with(&ctx, false);
        assert_eq!(t1.rows.len(), 11);
        assert_eq!(t1.degraded.len(), 1);
        assert_eq!(t1.degraded[0].name, "Xeon Phi");
    }
}
