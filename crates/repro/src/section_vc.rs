//! §V-C analyses: the streaming energy-per-byte worked example and the
//! constant-power-fraction vs. peak-efficiency correlation.

use serde::{Deserialize, Serialize};

use archline_core::EnergyRoofline;
use archline_platforms::{platform, PlatformId, Precision};
use archline_stats::pearson;

use crate::platforms_by_peak_efficiency;
use crate::render::{pct, sig3, TextTable};

/// The streaming worked example for one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamEnergyRow {
    /// Platform name.
    pub name: String,
    /// Marginal `ε_mem`, J/B.
    pub eps_mem: f64,
    /// Constant-power charge `τ_mem·π_1`, J/B.
    pub const_charge: f64,
    /// Total streaming energy per byte, J/B.
    pub total: f64,
}

/// The §V-C report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionVcReport {
    /// The Xeon Phi / GTX Titan / Arndale GPU worked example (paper order),
    /// then every other platform.
    pub stream_energy: Vec<StreamEnergyRow>,
    /// `π_1/(π_1 + Δπ)` per platform (Fig. 5 order).
    pub const_fraction: Vec<(String, f64)>,
    /// Number of platforms with constant-power fraction above 50 %.
    pub over_half: usize,
    /// Pearson correlation between the constant-power fraction and peak
    /// energy-efficiency (log scale) — the paper reports ≈ −0.6.
    pub correlation: f64,
}

/// Computes the §V-C analyses from a shared
/// [`crate::context::AnalysisContext`] (model-only; uniform artifact API).
pub fn compute_with(_ctx: &crate::context::AnalysisContext) -> SectionVcReport {
    compute()
}

/// Computes the §V-C analyses (model-only, from Table I).
pub fn compute() -> SectionVcReport {
    let featured = [PlatformId::XeonPhi, PlatformId::GtxTitan, PlatformId::ArndaleGpu];
    let mut stream_energy: Vec<StreamEnergyRow> = Vec::new();
    let mut push_row = |id: PlatformId| {
        let p = platform(id);
        let params = p.machine_params(Precision::Single).expect("single");
        let model = EnergyRoofline::new(params);
        stream_energy.push(StreamEnergyRow {
            name: p.name.clone(),
            eps_mem: params.energy_per_byte,
            const_charge: params.time_per_byte * params.const_power,
            total: model.streaming_energy_per_byte(),
        });
    };
    for id in featured {
        push_row(id);
    }
    for id in PlatformId::ALL {
        if !featured.contains(&id) {
            push_row(id);
        }
    }

    let ordered = platforms_by_peak_efficiency();
    let const_fraction: Vec<(String, f64)> = ordered
        .iter()
        .map(|p| {
            let params = p.machine_params(Precision::Single).expect("single");
            (p.name.clone(), params.const_power_fraction())
        })
        .collect();
    let over_half = const_fraction.iter().filter(|(_, f)| *f > 0.5).count();

    let fractions: Vec<f64> = const_fraction.iter().map(|(_, f)| *f).collect();
    let peak_eff_log: Vec<f64> = ordered
        .iter()
        .map(|p| {
            EnergyRoofline::new(p.machine_params(Precision::Single).expect("single"))
                .peak_energy_eff()
                .ln()
        })
        .collect();
    let correlation = pearson(&fractions, &peak_eff_log);

    SectionVcReport { stream_energy, const_fraction, over_half, correlation }
}

/// Renders the worked example and the correlation.
pub fn render(report: &SectionVcReport) -> String {
    let mut t = TextTable::new(vec!["Platform", "eps_mem pJ/B", "pi1 charge pJ/B", "total pJ/B"]);
    for r in &report.stream_energy {
        t.row(vec![
            r.name.clone(),
            sig3(r.eps_mem / 1e-12),
            sig3(r.const_charge / 1e-12),
            sig3(r.total / 1e-12),
        ]);
    }
    let mut f = TextTable::new(vec!["Platform", "pi1/(pi1+cap)"]);
    for (name, frac) in &report.const_fraction {
        f.row(vec![name.clone(), pct(*frac)]);
    }
    format!(
        "§V-C: total energy per streamed byte (ε_mem + τ_mem·π_1)\n\n{}\n\
         Constant-power fraction per platform (> 50% on {} of 12):\n\n{}\n\
         Pearson correlation of constant-power fraction vs log peak Gflop/J: {}\n",
        t.render(),
        report.over_half,
        f.render(),
        sig3(report.correlation)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_matches_paper_numbers() {
        // Paper: Arndale GPU 671 pJ/B < GTX Titan 782 pJ/B < Xeon Phi
        // 1.13 nJ/B — despite the Phi having the lowest ε_mem.
        let r = compute();
        let total = |name: &str| {
            r.stream_energy.iter().find(|s| s.name == name).expect("present").total
        };
        assert!((total("Arndale GPU") - 671e-12).abs() < 4e-12);
        assert!((total("GTX Titan") - 782e-12).abs() < 4e-12);
        assert!((total("Xeon Phi") - 1.13e-9).abs() < 0.02e-9);
        assert!(total("Arndale GPU") < total("GTX Titan"));
        assert!(total("GTX Titan") < total("Xeon Phi"));
    }

    #[test]
    fn phi_has_lowest_marginal_eps_mem() {
        let r = compute();
        let phi = r.stream_energy.iter().find(|s| s.name == "Xeon Phi").unwrap();
        for s in &r.stream_energy {
            assert!(s.eps_mem >= phi.eps_mem, "{}", s.name);
        }
    }

    #[test]
    fn seven_platforms_over_half_constant_power() {
        let r = compute();
        assert_eq!(r.over_half, 7);
    }

    #[test]
    fn correlation_is_negative_around_point_six() {
        // Paper: "this fraction correlates with overall peak
        // energy-efficiency, with a correlation coefficient of about −0.6".
        let r = compute();
        assert!(
            (-0.75..=-0.45).contains(&r.correlation),
            "correlation {}",
            r.correlation
        );
    }

    #[test]
    fn rows_cover_all_platforms_featured_first() {
        let r = compute();
        assert_eq!(r.stream_energy.len(), 12);
        assert_eq!(r.stream_energy[0].name, "Xeon Phi");
        assert_eq!(r.stream_energy[1].name, "GTX Titan");
        assert_eq!(r.stream_energy[2].name, "Arndale GPU");
    }
}
