//! Fig. 7: hypothetical performance (7a) and energy-efficiency (7b) as the
//! usable power cap shrinks to `Δπ/k`.
//!
//! Normalizations follow the paper: performance to the GTX Titan's
//! 4.0 Tflop/s sustained peak, energy-efficiency to its 16 Gflop/J peak.

use serde::{Deserialize, Serialize};

use archline_core::{power::sample_intensities, EnergyRoofline, ThrottleScenario};
use archline_platforms::{platform, PlatformId, Precision};

use crate::platforms_by_peak_efficiency;
use crate::render::{sig3, TextTable};

/// Which of the two sub-figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig7Kind {
    /// Fig. 7a: flop/s.
    Performance,
    /// Fig. 7b: flop/J.
    EnergyEfficiency,
}

/// One platform's curves at the four cap settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Panel {
    /// Platform name.
    pub name: String,
    /// `(k, samples)` where samples are `(intensity, normalized value)`.
    pub curves: Vec<(f64, Vec<(f64, f64)>)>,
}

/// The regenerated sub-figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Report {
    /// Which sub-figure this is.
    pub kind: Fig7Kind,
    /// Normalization constant (4.02 Tflop/s or the Titan's peak flop/J).
    pub norm: f64,
    /// Panels in Fig. 5 order.
    pub panels: Vec<Fig7Panel>,
}

/// Regenerates Fig. 7a or 7b from a shared
/// [`crate::context::AnalysisContext`] (model-only; uniform artifact API).
pub fn compute_with(_ctx: &crate::context::AnalysisContext, kind: Fig7Kind) -> Fig7Report {
    compute(kind)
}

/// Regenerates Fig. 7a or 7b (model-only).
pub fn compute(kind: Fig7Kind) -> Fig7Report {
    let titan = EnergyRoofline::new(
        platform(PlatformId::GtxTitan).machine_params(Precision::Single).expect("single"),
    );
    let norm = match kind {
        Fig7Kind::Performance => titan.peak_perf(),
        Fig7Kind::EnergyEfficiency => titan.peak_energy_eff(),
    };
    let grid = sample_intensities(0.25, 128.0, 37);
    let panels = platforms_by_peak_efficiency()
        .iter()
        .map(|p| {
            let params = p.machine_params(Precision::Single).expect("single");
            let curves = ThrottleScenario::paper_factors(params)
                .models()
                .into_iter()
                .map(|(k, model)| {
                    // One batch evaluation per curve instead of a scalar
                    // call per grid point.
                    let mut vals = vec![0.0; grid.len()];
                    match kind {
                        Fig7Kind::Performance => model.plan().perf_batch(&grid, &mut vals),
                        Fig7Kind::EnergyEfficiency => {
                            model.plan().energy_eff_batch(&grid, &mut vals);
                        }
                    }
                    let samples =
                        grid.iter().zip(&vals).map(|(&i, &v)| (i, v / norm)).collect();
                    (k, samples)
                })
                .collect();
            Fig7Panel { name: p.name.clone(), curves }
        })
        .collect();
    Fig7Report { kind, norm, panels }
}

/// Value at the grid point nearest `intensity` for cap factor `k`.
pub fn value_at(panel: &Fig7Panel, k: f64, intensity: f64) -> Option<f64> {
    let (_, samples) = panel.curves.iter().find(|(kk, _)| *kk == k)?;
    samples
        .iter()
        .min_by(|a, b| {
            (a.0.ln() - intensity.ln())
                .abs()
                .partial_cmp(&(b.0.ln() - intensity.ln()).abs())
                .expect("finite")
        })
        .map(|&(_, v)| v)
}

/// Renders a compact per-panel summary at representative intensities.
pub fn render(report: &Fig7Report) -> String {
    let title = match report.kind {
        Fig7Kind::Performance => "Fig. 7a: performance under caps (normalized to 4.0 Tflop/s)",
        Fig7Kind::EnergyEfficiency => {
            "Fig. 7b: energy-efficiency under caps (normalized to 16 Gflop/J)"
        }
    };
    let mut t = TextTable::new(vec![
        "Platform", "k", "I=1/4", "I=2", "I=16", "I=128",
    ]);
    for p in &report.panels {
        for &(k, _) in &p.curves {
            // lint:allow(float-discipline, reason = "throttle factor is propagated verbatim from the paper_factors literal table, never computed")
            let label = if k == 1.0 { "Full".to_string() } else { format!("1/{}", k as u32) };
            t.row(vec![
                p.name.clone(),
                label,
                sig3(value_at(p, k, 0.25).unwrap_or(f64::NAN)),
                sig3(value_at(p, k, 2.0).unwrap_or(f64::NAN)),
                sig3(value_at(p, k, 16.0).unwrap_or(f64::NAN)),
                sig3(value_at(p, k, 128.0).unwrap_or(f64::NAN)),
            ]);
        }
    }
    format!("{title}\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel<'a>(r: &'a Fig7Report, name: &str) -> &'a Fig7Panel {
        r.panels.iter().find(|p| p.name == name).expect("platform present")
    }

    #[test]
    fn both_kinds_have_12_panels_4_curves() {
        for kind in [Fig7Kind::Performance, Fig7Kind::EnergyEfficiency] {
            let r = compute(kind);
            assert_eq!(r.panels.len(), 12);
            assert!(r.panels.iter().all(|p| p.curves.len() == 4));
        }
    }

    #[test]
    fn titan_full_normalizes_to_one_at_high_intensity() {
        let r = compute(Fig7Kind::Performance);
        let t = panel(&r, "GTX Titan");
        let v = value_at(t, 1.0, 128.0).unwrap();
        assert!((v - 1.0).abs() < 0.02, "{v}");
    }

    #[test]
    fn throttling_never_helps() {
        for kind in [Fig7Kind::Performance, Fig7Kind::EnergyEfficiency] {
            let r = compute(kind);
            for p in &r.panels {
                for i in [0.25, 2.0, 16.0, 128.0] {
                    let mut prev = f64::INFINITY;
                    for k in [1.0, 2.0, 4.0, 8.0] {
                        let v = value_at(p, k, i).unwrap();
                        assert!(
                            v <= prev * (1.0 + 1e-9),
                            "{} {kind:?} I={i} k={k}: {v} > {prev}",
                            p.name
                        );
                        prev = v;
                    }
                }
            }
        }
    }

    #[test]
    fn titan_low_intensity_degrades_least_nuc_cpu_high_intensity() {
        // Paper §V-D(i): memory-bound work on the Titan degrades least as
        // Δπ falls (compute-overprovisioned design); compute-bound work on
        // the NUC CPU degrades least (memory-overprovisioned design).
        let r = compute(Fig7Kind::Performance);
        let retention = |name: &str, i: f64| -> f64 {
            let p = panel(&r, name);
            value_at(p, 8.0, i).unwrap() / value_at(p, 1.0, i).unwrap()
        };
        // Titan holds bandwidth-bound performance best among the GPUs.
        let titan_low = retention("GTX Titan", 0.25);
        for other in ["GTX 680", "GTX 580", "Arndale GPU", "APU GPU", "NUC GPU"] {
            assert!(
                titan_low >= retention(other, 0.25) - 1e-9,
                "Titan {titan_low} vs {other} {}",
                retention(other, 0.25)
            );
        }
        // NUC CPU holds compute-bound performance best of all platforms
        // (its π_flop ≈ 0.8 W is tiny relative even to Δπ/8).
        let nuc_high = retention("NUC CPU", 128.0);
        for p in &r.panels {
            assert!(
                nuc_high >= retention(&p.name, 128.0) - 1e-9,
                "NUC CPU {nuc_high} vs {} {}",
                p.name,
                retention(&p.name, 128.0)
            );
        }
        assert!(nuc_high > 0.85, "{nuc_high}");
    }

    #[test]
    fn titan_at_k8_i_quarter_is_031x() {
        // §V-D: "a performance of approximately 0.31× at I = 0.25 relative
        // to the default Δπ".
        let r = compute(Fig7Kind::Performance);
        let t = panel(&r, "GTX Titan");
        let ratio = value_at(t, 8.0, 0.25).unwrap() / value_at(t, 1.0, 0.25).unwrap();
        assert!((ratio - 0.31).abs() < 0.02, "{ratio}");
    }
}
