//! Fig. 5: normalized average power vs. intensity for all 12 platforms —
//! model regime segments plus simulated measurement dots, with the paper's
//! panel annotations.

use serde::{Deserialize, Serialize};

use archline_core::{power::power_curve, EnergyRoofline, Regime};
use archline_microbench::SweepConfig;

use crate::analysis::PlatformAnalysis;
use crate::context::AnalysisContext;
use crate::render::{pct, sig3, TextTable};

/// One measured dot of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPoint {
    /// Intensity, flop:Byte.
    pub intensity: f64,
    /// Measured average power normalized to `π_1 + Δπ`.
    pub power_norm: f64,
}

/// One model-curve point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelPoint {
    /// Intensity, flop:Byte.
    pub intensity: f64,
    /// Predicted power normalized to `π_1 + Δπ`.
    pub power_norm: f64,
    /// Regime at this intensity (the figure's three line segments).
    pub regime: Regime,
}

/// One Fig. 5 panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Panel {
    /// Platform name.
    pub name: String,
    /// Panel headline: peak energy-efficiency, flop/J (fitted).
    pub peak_flops_per_joule: f64,
    /// Panel headline: peak streaming efficiency, B/J (fitted).
    pub peak_bytes_per_joule: f64,
    /// Paper's headline values for comparison.
    pub paper_peak_flops_per_joule: f64,
    /// Paper's headline B/J.
    pub paper_peak_bytes_per_joule: f64,
    /// Sustained flops as a fraction of the vendor claim (the "[81%]").
    pub sustained_flop_frac: f64,
    /// Sustained bandwidth fraction.
    pub sustained_bw_frac: f64,
    /// Fitted `π_1`, W.
    pub const_power: f64,
    /// Fitted `Δπ`, W.
    pub usable_power: f64,
    /// Model curve (normalized).
    pub model: Vec<ModelPoint>,
    /// Measured dots (normalized).
    pub measured: Vec<MeasuredPoint>,
}

impl Fig5Panel {
    /// Worst absolute relative deviation of measured dots from the model
    /// curve, matching dots to the nearest model intensity.
    pub fn max_measured_deviation(&self) -> f64 {
        self.measured
            .iter()
            .map(|m| {
                let nearest = self
                    .model
                    .iter()
                    .min_by(|a, b| {
                        let da = (a.intensity.ln() - m.intensity.ln()).abs();
                        let db = (b.intensity.ln() - m.intensity.ln()).abs();
                        da.partial_cmp(&db).expect("finite")
                    })
                    .expect("non-empty model curve");
                ((m.power_norm - nearest.power_norm) / nearest.power_norm).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// The regenerated figure: 12 panels in decreasing peak-efficiency order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Report {
    /// The panels.
    pub panels: Vec<Fig5Panel>,
}

/// Regenerates Fig. 5.
pub fn compute(cfg: &SweepConfig) -> Fig5Report {
    compute_with(&AnalysisContext::new(*cfg))
}

/// Regenerates Fig. 5 from a shared [`AnalysisContext`] (no re-sweep).
pub fn compute_with(ctx: &AnalysisContext) -> Fig5Report {
    let cfg = ctx.cfg();
    Fig5Report { panels: ctx.analyses().iter().map(|a| panel_for(a, cfg)).collect() }
}

fn panel_for(a: &PlatformAnalysis, cfg: &SweepConfig) -> Fig5Panel {
    let fitted = EnergyRoofline::new(a.fit.capped);
    let cap_total = a.fit.capped.const_power + a.fit.capped.cap.watts();
    let model = power_curve(&fitted, cfg.intensity_lo, cfg.intensity_hi, 97)
        .into_iter()
        .map(|p| ModelPoint {
            intensity: p.intensity,
            power_norm: p.power / cap_total,
            regime: p.regime,
        })
        .collect();
    let measured = a
        .suite
        .dram
        .runs
        .iter()
        .map(|r| MeasuredPoint {
            intensity: r.flops / r.bytes.max(1e-300),
            power_norm: r.avg_power() / cap_total,
        })
        .collect();
    Fig5Panel {
        name: a.platform.name.clone(),
        peak_flops_per_joule: fitted.peak_energy_eff(),
        peak_bytes_per_joule: fitted.peak_byte_eff(),
        paper_peak_flops_per_joule: a.platform.headline.peak_flops_per_joule,
        paper_peak_bytes_per_joule: a.platform.headline.peak_bytes_per_joule,
        sustained_flop_frac: a.fit.observed_flops / a.platform.vendor.single_flops,
        sustained_bw_frac: a.fit.observed_bw / a.platform.vendor.mem_bandwidth,
        const_power: a.fit.capped.const_power,
        usable_power: a.fit.capped.cap.watts(),
        model,
        measured,
    }
}

/// Renders ASCII charts for two showcase panels (the GTX Titan and the
/// Arndale GPU — the clean and the quirky extremes).
pub fn render_charts(report: &Fig5Report) -> String {
    use crate::plot::{ascii_plot, Series};
    let mut out = String::new();
    for name in ["GTX Titan", "Arndale GPU"] {
        let Some(p) = report.panels.iter().find(|p| p.name == name) else { continue };
        let model = Series::new(
            '-',
            "model (capped)",
            p.model.iter().map(|m| (m.intensity, m.power_norm)).collect(),
        );
        let measured = Series::new(
            'o',
            "measured (simulated)",
            p.measured.iter().map(|m| (m.intensity, m.power_norm)).collect(),
        );
        out.push_str(&format!(
            "{name} — power normalized to pi1+cap\n{}\n",
            ascii_plot(&[model, measured], 64, 12)
        ));
    }
    out
}

/// Renders the panel annotations plus a compact per-panel series preview.
pub fn render(report: &Fig5Report) -> String {
    let mut t = TextTable::new(vec![
        "Platform",
        "Gflop/J (paper)",
        "MB/J (paper)",
        "flops %peak",
        "bw %peak",
        "pi1 W",
        "cap W",
        "max dev",
    ]);
    for p in &report.panels {
        t.row(vec![
            p.name.clone(),
            format!("{} ({})", sig3(p.peak_flops_per_joule / 1e9), sig3(p.paper_peak_flops_per_joule / 1e9)),
            format!("{} ({})", sig3(p.peak_bytes_per_joule / 1e6), sig3(p.paper_peak_bytes_per_joule / 1e6)),
            pct(p.sustained_flop_frac),
            pct(p.sustained_bw_frac),
            sig3(p.const_power),
            sig3(p.usable_power),
            pct(p.max_measured_deviation()),
        ]);
    }
    let mut out = format!(
        "Fig. 5: power (normalized to pi1+cap) vs intensity — panel annotations\n\n{}",
        t.render()
    );
    out.push('\n');
    out.push_str(&render_charts(report));
    out.push_str("\nPer-panel series (intensity: model-normalized-power [regime] / measured):\n");
    for p in &report.panels {
        out.push_str(&format!("\n{}\n", p.name));
        for m in p.model.iter().step_by(16) {
            let measured = p
                .measured
                .iter()
                .min_by(|a, b| {
                    let da = (a.intensity.ln() - m.intensity.ln()).abs();
                    let db = (b.intensity.ln() - m.intensity.ln()).abs();
                    da.partial_cmp(&db).expect("finite")
                })
                .map(|d| format!("{:.3}", d.power_norm))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "  I={:<8} {:.3} [{}] / {}\n",
                archline_core::units::format_intensity(m.intensity),
                m.power_norm,
                m.regime.letter(),
                measured
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fast_config;

    #[test]
    fn headlines_match_paper_within_rounding() {
        let report = compute(&fast_config());
        assert_eq!(report.panels.len(), 12);
        for p in &report.panels {
            let rel_f = (p.peak_flops_per_joule - p.paper_peak_flops_per_joule).abs()
                / p.paper_peak_flops_per_joule;
            assert!(rel_f < 0.15, "{}: {} vs {}", p.name, p.peak_flops_per_joule, p.paper_peak_flops_per_joule);
        }
    }

    #[test]
    fn model_tracks_measurements_within_paper_bounds() {
        // The paper reports mispredictions "always less than 15 %" even on
        // the quirky platforms; clean platforms should be much tighter.
        let report = compute(&fast_config());
        let records = archline_platforms::all_platforms();
        for p in &report.panels {
            let dev = p.max_measured_deviation();
            let rec = records.iter().find(|r| r.name == p.name).expect("record");
            // Quirky platforms get the paper's 15–20 % allowance; clean
            // platforms scale with their calibrated measurement noise.
            let bound = match p.name.as_str() {
                "NUC GPU" | "Arndale GPU" => 0.20,
                _ => 0.06 + 3.0 * rec.noise.power_sigma,
            };
            assert!(dev < bound, "{}: max deviation {dev} (bound {bound})", p.name);
        }
    }

    #[test]
    fn power_curves_respect_the_cap_plateau() {
        let report = compute(&fast_config());
        for p in &report.panels {
            for m in &p.model {
                assert!(m.power_norm <= 1.0 + 1e-9, "{} at I={}", p.name, m.intensity);
            }
            // The curve must come near the cap plateau. On the Xeon Phi the
            // cap exceeds peak demand by only ~2 % in truth, so a weakly
            // identified fitted Δπ can drift upward and leave headroom —
            // allow a looser bound there.
            let max = p.model.iter().map(|m| m.power_norm).fold(0.0, f64::max);
            let floor = if p.name == "Xeon Phi" { 0.80 } else { 0.93 };
            assert!(max > floor, "{}: cap never approached ({max})", p.name);
        }
    }
}
