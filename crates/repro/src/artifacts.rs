//! Shared artifact entry points: the dispatch table the `repro` bin, the
//! serve crate, and integration tests all call into.
//!
//! Each artifact is a pure function of an [`AnalysisContext`] (plus the
//! `fast` knob) returning the rendered text and the machine-readable JSON
//! report. Keeping the dispatch here — instead of inside the bin — means
//! any long-running front-end (archline-serve) can serve artifacts without
//! shelling out to the CLI or duplicating the name → handler mapping.

use crate::{
    ext, fig1, fig4, fig5, fig6, fig7, scorecard, section_vc, section_vd, table1,
    AnalysisContext, ArtifactError,
};

/// Every artifact name, in `repro all` execution order.
pub const ARTIFACTS: &[&str] = &[
    "table1",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7a",
    "fig7b",
    "vc-energy",
    "vc-constpower",
    "vd-bounding",
    "ext-arndale",
    "ext-network",
    "ext-bounding",
    "ext-dvfs",
    "scorecard",
];

/// True when `name` is a known artifact (the bin validates before running).
pub fn is_artifact(name: &str) -> bool {
    ARTIFACTS.contains(&name)
}

/// Serializes a report, mapping serializer errors into the failure path.
fn to_json<T: serde::Serialize>(name: &str, report: &T) -> Result<String, ArtifactError> {
    serde_json::to_string_pretty(report)
        .map_err(|e| ArtifactError::new(format!("serialize {name}: {e}")))
}

/// Computes one artifact against a shared context, returning
/// `(rendered_text, json_report)`.
pub fn run_artifact(
    name: &str,
    ctx: &AnalysisContext,
    fast: bool,
) -> Result<(String, String), ArtifactError> {
    match name {
        "table1" => {
            let r = table1::compute_with(ctx, !fast);
            Ok((table1::render(&r), to_json(name, &r)?))
        }
        "fig1" => {
            let r = fig1::compute(if fast { 9 } else { 17 });
            Ok((fig1::render(&r), to_json(name, &r)?))
        }
        "fig4" => {
            let r = fig4::compute_with(ctx);
            Ok((fig4::render(&r), to_json(name, &r)?))
        }
        "fig5" => {
            let r = fig5::compute_with(ctx);
            Ok((fig5::render(&r), to_json(name, &r)?))
        }
        "fig6" => {
            let r = fig6::compute_with(ctx);
            Ok((fig6::render(&r), to_json(name, &r)?))
        }
        "fig7a" => {
            let r = fig7::compute_with(ctx, fig7::Fig7Kind::Performance);
            Ok((fig7::render(&r), to_json(name, &r)?))
        }
        "fig7b" => {
            let r = fig7::compute_with(ctx, fig7::Fig7Kind::EnergyEfficiency);
            Ok((fig7::render(&r), to_json(name, &r)?))
        }
        "vc-energy" | "vc-constpower" => {
            let r = section_vc::compute_with(ctx);
            Ok((section_vc::render(&r), to_json(name, &r)?))
        }
        "vd-bounding" => {
            let r = section_vd::compute_with(ctx);
            Ok((section_vd::render(&r), to_json(name, &r)?))
        }
        "ext-arndale" => {
            let r = ext::arndale_ablation_with(ctx)?;
            Ok((ext::render_arndale(&r), to_json(name, &r)?))
        }
        "ext-network" => {
            let r = ext::network_erosion()?;
            Ok((ext::render_network(&r), to_json(name, &r)?))
        }
        "ext-bounding" => {
            let r = ext::bounding_matrix()?;
            Ok((ext::render_bounding(&r), to_json(name, &r)?))
        }
        "ext-dvfs" => {
            let r = ext::dvfs_whatif()?;
            Ok((ext::render_dvfs(&r), to_json(name, &r)?))
        }
        "scorecard" => {
            let r = scorecard::compute_with(ctx);
            Ok((scorecard::render(&r), to_json(name, &r)?))
        }
        other => Err(ArtifactError::new(format!("unknown artifact `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_artifact_is_a_typed_error() {
        let ctx = AnalysisContext::new(crate::analysis::fast_config());
        let err = run_artifact("nope", &ctx, true).unwrap_err();
        assert!(err.message.contains("unknown artifact"), "{}", err.message);
    }

    #[test]
    fn every_listed_artifact_is_recognized() {
        for name in ARTIFACTS {
            assert!(is_artifact(name));
        }
        assert!(!is_artifact("all"));
    }
}
