//! `repro` — regenerate the tables and figures of Choi et al. (IPDPS 2014).
//!
//! ```text
//! repro <artifact> [--fast] [--csv DIR] [--threads N] [--inject SPEC]
//!
//! artifacts:
//!   table1         Table I  — platform summary (paper vs re-fitted)
//!   fig1           Fig. 1   — GTX Titan vs Arndale GPU (+ power-matched array)
//!   fig4           Fig. 4   — capped vs uncapped error distributions + K-S
//!   fig5           Fig. 5   — normalized power vs intensity, 12 platforms
//!   fig6           Fig. 6   — power under caps Δπ/k
//!   fig7a | fig7b  Fig. 7   — performance / energy-efficiency under caps
//!   vc-energy      §V-C     — streaming energy per byte worked example
//!   vc-constpower  §V-C     — constant-power fraction + correlation
//!   vd-bounding    §V-D     — power bounding comparison
//!   ext-arndale    extension: utilization-scaled capping ablation
//!   ext-network    extension: interconnect-cost erosion of Fig. 1
//!   ext-bounding   extension: §V-D generalized to all platform pairs
//!   ext-dvfs       extension: energy-optimal DVFS frequencies
//!   scorecard      every headline claim checked with a PASS/DEVIATION verdict
//!   all            everything above
//!
//! flags:
//!   --fast         smaller simulated sweeps (quick smoke runs)
//!   --csv DIR      also write machine-readable JSON reports into DIR
//!   --threads N    worker threads for the simulation sweeps (default: all
//!                  cores, or the ARCHLINE_THREADS environment variable)
//!   --inject SPEC  corrupt one platform's DRAM measurements with a seeded
//!                  fault before fitting (repeatable). SPEC is
//!                  `PLATFORM:CLASS:SEVERITY[:SEED]`, e.g.
//!                  `Arndale GPU:spike:0.2:7`. Classes: drop, duplicate,
//!                  out-of-order, clock-skew, jitter, spike, quantize,
//!                  counter-wrap, rail-dropout, fail-run.
//!   -q, --quiet    stderr shows errors only
//!   -v, --verbose  stderr verbosity: -v = stage-level detail (fit stages,
//!                  fault audits), -vv = everything (per-task spans, NM
//!                  iteration traces)
//!   --trace-out P  write a machine-readable JSONL trace of the whole run
//!                  to P (every level, regardless of -q/-v; equivalent to
//!                  ARCHLINE_TRACE=P)
//!   --profile      collect span timings; print a per-stage self-time
//!                  breakdown to stderr and embed the metrics snapshot in
//!                  BENCH_repro.json
//! ```
//!
//! All artifacts computed in one invocation share an
//! [`archline_repro::AnalysisContext`], so `repro all` runs the 12-platform
//! measurement-and-fit sweep exactly once. Per-artifact wall times go to
//! stderr; `repro all` additionally writes them to `BENCH_repro.json`
//! (emitted even when some artifacts fail, with the failures recorded).
//!
//! **Degradation contract**: a platform whose measure-and-fit fails — or
//! that `--inject` corrupts past fitability — is dropped from the sweep and
//! marked DEGRADED in Table I and the scorecard; artifacts that crash or
//! error are reported in an end-of-run failure summary instead of aborting
//! the rest. Exit status: `0` when everything succeeded, `3` when some
//! artifacts succeeded but platforms were degraded or artifacts failed
//! (partial failure), `1` when no artifact succeeded, `2` for usage errors.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use archline_faults::{FaultPlan, FaultSpec};
use archline_microbench::SweepConfig;
use archline_obs::{self as obs, field};
use archline_repro::{
    analysis, failure::panic_message, run_artifact, AnalysisContext, ArtifactError, ARTIFACTS,
};

const EXIT_TOTAL_FAILURE: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_PARTIAL_FAILURE: i32 = 3;

/// Schema of `BENCH_repro.json`. v1 (implicit, pre-versioning) had only
/// per-artifact timings + status; v2 adds `schema_version`, `git_rev`, and
/// the optional `metrics`/`profile` sections.
const BENCH_SCHEMA_VERSION: u64 = 2;

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("repro: {error}");
    }
    eprintln!(
        "usage: repro <artifact> [--fast] [--csv DIR] [--threads N] \
         [--inject 'PLATFORM:CLASS:SEVERITY[:SEED]'] [-q] [-v[v]] \
         [--trace-out PATH] [--profile]\n\
         artifacts: {} | all",
        ARTIFACTS.join(" | ")
    );
    obs::flush();
    std::process::exit(EXIT_USAGE);
}

/// Parses one `--inject` value: `PLATFORM:CLASS:SEVERITY[:SEED]`.
fn parse_inject(value: &str) -> Result<(String, FaultSpec), String> {
    let (platform, spec) = value
        .split_once(':')
        .ok_or_else(|| format!("--inject `{value}`: expected PLATFORM:CLASS:SEVERITY[:SEED]"))?;
    let known = archline_repro::platforms_by_peak_efficiency();
    if !known.iter().any(|p| p.name == platform) {
        return Err(format!(
            "--inject: unknown platform `{platform}` (one of: {})",
            known.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join(", ")
        ));
    }
    let spec = FaultSpec::parse(spec).map_err(|e| format!("--inject: {e}"))?;
    Ok((platform.to_string(), spec))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut csv_dir: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut artifact: Option<String> = None;
    let mut injections: Vec<(String, FaultSpec)> = Vec::new();
    let mut quiet = false;
    let mut verbose: u8 = 0;
    let mut trace_out: Option<String> = None;
    let mut profile = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "-q" | "--quiet" => quiet = true,
            "-v" | "--verbose" => verbose += 1,
            "-vv" => verbose += 2,
            "--profile" => profile = true,
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path.clone()),
                None => usage("--trace-out needs a path"),
            },
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(dir.clone()),
                None => usage("--csv needs a directory"),
            },
            "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => threads = Some(n),
                Some(Err(_)) => usage("--threads needs a positive integer"),
                None => usage("--threads needs a positive integer"),
            },
            "--inject" => match it.next() {
                Some(value) => match parse_inject(value) {
                    Ok(inj) => injections.push(inj),
                    Err(e) => usage(&e),
                },
                None => usage("--inject needs PLATFORM:CLASS:SEVERITY[:SEED]"),
            },
            name if !name.starts_with("--") && artifact.is_none() => {
                artifact = Some(name.to_string());
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let artifact = artifact.unwrap_or_else(|| usage(""));
    if artifact != "all" && !ARTIFACTS.contains(&artifact.as_str()) {
        usage(&format!("unknown artifact `{artifact}`"));
    }

    // Observability: Info on stderr preserves the pre-obs output
    // ([time] lines, error reports, the failure summary). The environment
    // (ARCHLINE_LOG / ARCHLINE_TRACE / ARCHLINE_TRACE_TIMING) applies
    // next; explicit flags win over both.
    obs::set_stderr_level(Some(obs::Level::Info));
    if let Err(e) = obs::init_from_env() {
        usage(&e);
    }
    if quiet {
        obs::set_stderr_level(Some(obs::Level::Error));
    } else if verbose >= 2 {
        obs::set_stderr_level(Some(obs::Level::Trace));
    } else if verbose == 1 {
        obs::set_stderr_level(Some(obs::Level::Debug));
    }
    if let Some(path) = &trace_out {
        match obs::JsonlSink::file(path) {
            Ok(sink) => {
                obs::install_sink(std::sync::Arc::new(sink));
            }
            Err(e) => usage(&format!("--trace-out: cannot open `{path}`: {e}")),
        }
    }
    if profile {
        obs::set_profiling(true);
    }

    if let Some(n) = threads {
        if let Err(e) = archline_par::set_num_threads(n) {
            usage(&format!("--threads {n}: {e}"));
        }
    }

    // Fold repeated --inject specs into one ordered plan per platform.
    let mut sabotage: Vec<(String, FaultPlan)> = Vec::new();
    for (platform, spec) in injections {
        match sabotage.iter_mut().find(|(name, _)| *name == platform) {
            Some((_, plan)) => plan.specs.push(spec),
            None => sabotage.push((platform, FaultPlan::new(vec![spec]))),
        }
    }

    let cfg = if fast { analysis::fast_config() } else { SweepConfig::default() };
    // One shared context: every artifact below reuses the same 12-platform
    // sweep instead of re-running it.
    let ctx = AnalysisContext::with_sabotage(cfg, sabotage);
    let all = artifact == "all";
    let names: Vec<&str> = if all { ARTIFACTS.to_vec() } else { vec![artifact.as_str()] };
    let attempted = names.len();

    let total_start = Instant::now();
    let mut timings: Vec<(&str, f64)> = Vec::new();
    let mut failed: Vec<(&str, String)> = Vec::new();
    for name in names {
        let start = Instant::now();
        // Isolate each artifact: a panic (or error) in one must not take
        // down the rest of `repro all`. The span guard sits outside the
        // unwind handler, so a panicking artifact still closes its span.
        let outcome = {
            let _span = obs::span_with(
                obs::Level::Debug,
                "repro",
                "artifact",
                &[field("name", name.to_string())],
            );
            catch_unwind(AssertUnwindSafe(|| run_one(name, &ctx, fast, &csv_dir)))
        };
        let result = match outcome {
            Ok(r) => r,
            Err(payload) => Err(ArtifactError::new(panic_message(payload))),
        };
        let secs = start.elapsed().as_secs_f64();
        timings.push((name, secs));
        obs::info!("repro", "[time] {name}: {secs:.3}s");
        if let Err(e) = result {
            obs::error!("repro", "repro: ERROR: {name}: {e}");
            failed.push((name, e.message));
        }
    }
    let total = total_start.elapsed().as_secs_f64();
    obs::info!("repro", "[time] total: {total:.3}s");

    // Degraded platforms, without forcing the sweep for artifacts that
    // never needed it (fig1, the model-only extensions).
    let degraded: Vec<(String, String)> = if ctx.sweep_misses() > 0 {
        ctx.failures().iter().map(|f| (f.name.clone(), f.error.clone())).collect()
    } else {
        Vec::new()
    };

    let exit = if failed.is_empty() && degraded.is_empty() {
        0
    } else if failed.len() == attempted {
        EXIT_TOTAL_FAILURE
    } else {
        EXIT_PARTIAL_FAILURE
    };

    if all {
        write_bench(&timings, total, &failed, &degraded, profile);
    }

    // End-of-run failure summary (stderr, after all artifact output).
    if !degraded.is_empty() || !failed.is_empty() {
        obs::error!("repro", "repro: failure summary");
        if !degraded.is_empty() {
            obs::error!("repro", "  degraded platforms ({} of 12):", degraded.len());
            for (name, reason) in &degraded {
                obs::error!("repro", "    {name} — {reason}");
            }
        }
        if !failed.is_empty() {
            obs::error!("repro", "  failed artifacts ({} of {attempted}):", failed.len());
            for (name, reason) in &failed {
                obs::error!("repro", "    {name} — {reason}");
            }
        }
        let kind = if exit == EXIT_TOTAL_FAILURE { "total" } else { "partial" };
        obs::error!("repro", "repro: exiting {exit} ({kind} failure)");
    }

    if profile {
        eprint!("{}", obs::render_profile(&obs::profile_snapshot()));
    }
    // `exit` skips destructors, so flush the trace/metrics explicitly.
    obs::flush();
    std::process::exit(exit);
}

/// Computes, prints, and (optionally) persists one artifact.
fn run_one(
    name: &str,
    ctx: &AnalysisContext,
    fast: bool,
    csv_dir: &Option<String>,
) -> Result<(), ArtifactError> {
    let (text, json) = run_artifact(name, ctx, fast)?;
    println!("{text}");
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| ArtifactError::new(format!("create output dir {dir}: {e}")))?;
        let path = format!("{dir}/{name}.json");
        std::fs::write(&path, json)
            .map_err(|e| ArtifactError::new(format!("write {path}: {e}")))?;
        obs::info!("repro", "wrote {path}");
    }
    Ok(())
}

/// Warns when the file about to be replaced predates the current schema —
/// an older binary's output should never be silently confused with ours.
fn check_prior_schema(path: &str) {
    let Ok(old) = std::fs::read_to_string(path) else { return };
    match serde_json::from_str::<serde_json::Value>(&old) {
        Ok(v) => {
            // Files written before versioning carry no marker: schema v1.
            let old_ver = v
                .as_object()
                .and_then(|m| m.get("schema_version"))
                .and_then(|v| match v {
                    serde_json::Value::Number(serde_json::Number::PosInt(n)) => Some(*n),
                    _ => None,
                })
                .unwrap_or(1);
            if old_ver < BENCH_SCHEMA_VERSION {
                obs::warn!(
                    "repro",
                    "repro: replacing {path} with schema_version {old_ver} \
                     (current is {BENCH_SCHEMA_VERSION})"
                );
            }
        }
        Err(e) => obs::warn!("repro", "repro: replacing unparseable {path}: {e}"),
    }
}

/// Writes `BENCH_repro.json` — always, even on partial failure, so a
/// degraded run still leaves a machine-readable record of what completed.
fn write_bench(
    timings: &[(&str, f64)],
    total: f64,
    failed: &[(&str, String)],
    degraded: &[(String, String)],
    profile: bool,
) {
    let mut bench = serde_json::Map::new();
    bench.insert("schema_version".to_string(), serde_json::Value::from(BENCH_SCHEMA_VERSION));
    if let Some(rev) = obs::git_revision() {
        bench.insert("git_rev".to_string(), serde_json::Value::from(rev));
    }
    for (name, secs) in timings {
        bench.insert((*name).to_string(), serde_json::Value::from(*secs));
    }
    bench.insert("total".to_string(), serde_json::Value::from(total));
    let status = if failed.is_empty() && degraded.is_empty() {
        "ok"
    } else if failed.len() == timings.len() {
        "failed"
    } else {
        "partial"
    };
    bench.insert("status".to_string(), serde_json::Value::from(status));
    if !failed.is_empty() {
        let list = failed.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ");
        bench.insert("failed_artifacts".to_string(), serde_json::Value::from(list));
    }
    if !degraded.is_empty() {
        let list = degraded.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(", ");
        bench.insert("degraded_platforms".to_string(), serde_json::Value::from(list));
    }
    if profile {
        let mut metrics = String::new();
        obs::metrics::snapshot().write_json(&mut metrics);
        match serde_json::from_str::<serde_json::Value>(&metrics) {
            Ok(v) => {
                bench.insert("metrics".to_string(), v);
            }
            Err(e) => obs::warn!("repro", "repro: warning: metrics snapshot unparseable: {e}"),
        }
        let rows: Vec<serde_json::Value> = obs::profile_snapshot()
            .iter()
            .map(|r| {
                let mut m = serde_json::Map::new();
                m.insert(
                    "span".to_string(),
                    serde_json::Value::from(format!("{}.{}", r.target, r.name)),
                );
                m.insert("count".to_string(), serde_json::Value::from(r.count));
                m.insert(
                    "total_ms".to_string(),
                    serde_json::Value::from(r.total_ns as f64 / 1e6),
                );
                m.insert("self_ms".to_string(), serde_json::Value::from(r.self_ns as f64 / 1e6));
                serde_json::Value::Object(m)
            })
            .collect();
        bench.insert("profile".to_string(), serde_json::Value::from(rows));
    }
    let body = match serde_json::to_string_pretty(&serde_json::Value::Object(bench)) {
        Ok(body) => body,
        Err(e) => {
            obs::warn!("repro", "repro: warning: serialize BENCH_repro.json: {e}");
            return;
        }
    };
    check_prior_schema("BENCH_repro.json");
    match std::fs::write("BENCH_repro.json", body) {
        Ok(()) => obs::info!("repro", "wrote BENCH_repro.json"),
        Err(e) => obs::warn!("repro", "repro: warning: write BENCH_repro.json: {e}"),
    }
}

