//! `repro` — regenerate the tables and figures of Choi et al. (IPDPS 2014).
//!
//! ```text
//! repro <artifact> [--fast] [--csv DIR]
//!
//! artifacts:
//!   table1         Table I  — platform summary (paper vs re-fitted)
//!   fig1           Fig. 1   — GTX Titan vs Arndale GPU (+ power-matched array)
//!   fig4           Fig. 4   — capped vs uncapped error distributions + K-S
//!   fig5           Fig. 5   — normalized power vs intensity, 12 platforms
//!   fig6           Fig. 6   — power under caps Δπ/k
//!   fig7a | fig7b  Fig. 7   — performance / energy-efficiency under caps
//!   vc-energy      §V-C     — streaming energy per byte worked example
//!   vc-constpower  §V-C     — constant-power fraction + correlation
//!   vd-bounding    §V-D     — power bounding comparison
//!   ext-arndale    extension: utilization-scaled capping ablation
//!   ext-network    extension: interconnect-cost erosion of Fig. 1
//!   ext-bounding   extension: §V-D generalized to all platform pairs
//!   ext-dvfs       extension: energy-optimal DVFS frequencies
//!   scorecard      every headline claim checked with a PASS/DEVIATION verdict
//!   all            everything above
//!
//! flags:
//!   --fast      smaller simulated sweeps (quick smoke runs)
//!   --csv DIR   also write machine-readable JSON reports into DIR
//! ```

use std::io::Write as _;

use archline_microbench::SweepConfig;
use archline_repro::{
    analysis, ext, fig1, fig4, fig5, fig6, fig7, scorecard, section_vc, section_vd, table1,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let artifact = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(a.as_str()) != csv_dir.as_deref())
        .cloned()
        .unwrap_or_else(|| {
            eprintln!("usage: repro <table1|fig1|fig4|fig5|fig6|fig7a|fig7b|vc-energy|vc-constpower|vd-bounding|ext-arndale|ext-network|ext-bounding|ext-dvfs|scorecard|all> [--fast] [--csv DIR]");
            std::process::exit(2);
        });

    let cfg = if fast { analysis::fast_config() } else { SweepConfig::default() };
    let names: Vec<&str> = if artifact == "all" {
        vec![
            "table1", "fig1", "fig4", "fig5", "fig6", "fig7a", "fig7b", "vc-energy",
            "vc-constpower", "vd-bounding", "ext-arndale", "ext-network", "ext-bounding", "ext-dvfs",
            "scorecard",
        ]
    } else {
        vec![artifact.as_str()]
    };

    for name in names {
        let (text, json) = run_artifact(name, &cfg, fast);
        println!("{text}");
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = format!("{dir}/{name}.json");
            let mut f = std::fs::File::create(&path).expect("create report file");
            f.write_all(json.as_bytes()).expect("write report");
            eprintln!("wrote {path}");
        }
    }
}

fn run_artifact(name: &str, cfg: &SweepConfig, fast: bool) -> (String, String) {
    match name {
        "table1" => {
            let r = table1::compute(cfg, !fast);
            (table1::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig1" => {
            let r = fig1::compute(if fast { 9 } else { 17 });
            (fig1::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig4" => {
            let r = fig4::compute(cfg);
            (fig4::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig5" => {
            let r = fig5::compute(cfg);
            (fig5::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig6" => {
            let r = fig6::compute();
            (fig6::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig7a" => {
            let r = fig7::compute(fig7::Fig7Kind::Performance);
            (fig7::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig7b" => {
            let r = fig7::compute(fig7::Fig7Kind::EnergyEfficiency);
            (fig7::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "vc-energy" | "vc-constpower" => {
            let r = section_vc::compute();
            (section_vc::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "vd-bounding" => {
            let r = section_vd::compute();
            (section_vd::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "ext-arndale" => {
            let r = ext::arndale_ablation(cfg);
            (ext::render_arndale(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "ext-network" => {
            let r = ext::network_erosion();
            (ext::render_network(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "ext-bounding" => {
            let r = ext::bounding_matrix();
            (ext::render_bounding(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "ext-dvfs" => {
            let r = ext::dvfs_whatif();
            (ext::render_dvfs(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "scorecard" => {
            let r = scorecard::compute(cfg);
            (scorecard::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        other => {
            eprintln!("unknown artifact `{other}`");
            std::process::exit(2);
        }
    }
}
