//! `repro` — regenerate the tables and figures of Choi et al. (IPDPS 2014).
//!
//! ```text
//! repro <artifact> [--fast] [--csv DIR] [--threads N]
//!
//! artifacts:
//!   table1         Table I  — platform summary (paper vs re-fitted)
//!   fig1           Fig. 1   — GTX Titan vs Arndale GPU (+ power-matched array)
//!   fig4           Fig. 4   — capped vs uncapped error distributions + K-S
//!   fig5           Fig. 5   — normalized power vs intensity, 12 platforms
//!   fig6           Fig. 6   — power under caps Δπ/k
//!   fig7a | fig7b  Fig. 7   — performance / energy-efficiency under caps
//!   vc-energy      §V-C     — streaming energy per byte worked example
//!   vc-constpower  §V-C     — constant-power fraction + correlation
//!   vd-bounding    §V-D     — power bounding comparison
//!   ext-arndale    extension: utilization-scaled capping ablation
//!   ext-network    extension: interconnect-cost erosion of Fig. 1
//!   ext-bounding   extension: §V-D generalized to all platform pairs
//!   ext-dvfs       extension: energy-optimal DVFS frequencies
//!   scorecard      every headline claim checked with a PASS/DEVIATION verdict
//!   all            everything above
//!
//! flags:
//!   --fast        smaller simulated sweeps (quick smoke runs)
//!   --csv DIR     also write machine-readable JSON reports into DIR
//!   --threads N   worker threads for the simulation sweeps (default: all
//!                 cores, or the ARCHLINE_THREADS environment variable)
//! ```
//!
//! All artifacts computed in one invocation share an
//! [`archline_repro::AnalysisContext`], so `repro all` runs the 12-platform
//! measurement-and-fit sweep exactly once. Per-artifact wall times go to
//! stderr; `repro all` additionally writes them to `BENCH_repro.json`.

use std::io::Write as _;
use std::time::Instant;

use archline_microbench::SweepConfig;
use archline_repro::{
    analysis, ext, fig1, fig4, fig5, fig6, fig7, scorecard, section_vc, section_vd, table1,
    AnalysisContext,
};

const ARTIFACTS: &[&str] = &[
    "table1",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7a",
    "fig7b",
    "vc-energy",
    "vc-constpower",
    "vd-bounding",
    "ext-arndale",
    "ext-network",
    "ext-bounding",
    "ext-dvfs",
    "scorecard",
];

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("repro: {error}");
    }
    eprintln!(
        "usage: repro <artifact> [--fast] [--csv DIR] [--threads N]\n\
         artifacts: {} | all",
        ARTIFACTS.join(" | ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut csv_dir: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut artifact: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(dir.clone()),
                None => usage("--csv needs a directory"),
            },
            "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => threads = Some(n),
                Some(Err(_)) => usage("--threads needs a positive integer"),
                None => usage("--threads needs a positive integer"),
            },
            name if !name.starts_with("--") && artifact.is_none() => {
                artifact = Some(name.to_string());
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let artifact = artifact.unwrap_or_else(|| usage(""));
    if artifact != "all" && !ARTIFACTS.contains(&artifact.as_str()) {
        usage(&format!("unknown artifact `{artifact}`"));
    }
    if let Some(n) = threads {
        if let Err(e) = archline_par::set_num_threads(n) {
            usage(&format!("--threads {n}: {e}"));
        }
    }

    let cfg = if fast { analysis::fast_config() } else { SweepConfig::default() };
    // One shared context: every artifact below reuses the same 12-platform
    // sweep instead of re-running it.
    let ctx = AnalysisContext::new(cfg);
    let all = artifact == "all";
    let names: Vec<&str> = if all { ARTIFACTS.to_vec() } else { vec![artifact.as_str()] };

    let total_start = Instant::now();
    let mut timings: Vec<(&str, f64)> = Vec::new();
    for name in names {
        let start = Instant::now();
        let (text, json) = run_artifact(name, &ctx, fast);
        let secs = start.elapsed().as_secs_f64();
        timings.push((name, secs));
        eprintln!("[time] {name}: {secs:.3}s");
        println!("{text}");
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = format!("{dir}/{name}.json");
            let mut f = std::fs::File::create(&path).expect("create report file");
            f.write_all(json.as_bytes()).expect("write report");
            eprintln!("wrote {path}");
        }
    }
    let total = total_start.elapsed().as_secs_f64();
    eprintln!("[time] total: {total:.3}s");

    if all {
        let mut bench = serde_json::Map::new();
        for (name, secs) in &timings {
            bench.insert((*name).to_string(), serde_json::Value::from(*secs));
        }
        bench.insert("total".to_string(), serde_json::Value::from(total));
        let body = serde_json::to_string_pretty(&serde_json::Value::Object(bench))
            .expect("serialize timings");
        std::fs::write("BENCH_repro.json", body).expect("write BENCH_repro.json");
        eprintln!("wrote BENCH_repro.json");
    }
}

fn run_artifact(name: &str, ctx: &AnalysisContext, fast: bool) -> (String, String) {
    match name {
        "table1" => {
            let r = table1::compute_with(ctx, !fast);
            (table1::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig1" => {
            let r = fig1::compute(if fast { 9 } else { 17 });
            (fig1::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig4" => {
            let r = fig4::compute_with(ctx);
            (fig4::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig5" => {
            let r = fig5::compute_with(ctx);
            (fig5::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig6" => {
            let r = fig6::compute_with(ctx);
            (fig6::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig7a" => {
            let r = fig7::compute_with(ctx, fig7::Fig7Kind::Performance);
            (fig7::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "fig7b" => {
            let r = fig7::compute_with(ctx, fig7::Fig7Kind::EnergyEfficiency);
            (fig7::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "vc-energy" | "vc-constpower" => {
            let r = section_vc::compute_with(ctx);
            (section_vc::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "vd-bounding" => {
            let r = section_vd::compute_with(ctx);
            (section_vd::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "ext-arndale" => {
            let r = ext::arndale_ablation_with(ctx);
            (ext::render_arndale(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "ext-network" => {
            let r = ext::network_erosion();
            (ext::render_network(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "ext-bounding" => {
            let r = ext::bounding_matrix();
            (ext::render_bounding(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "ext-dvfs" => {
            let r = ext::dvfs_whatif();
            (ext::render_dvfs(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        "scorecard" => {
            let r = scorecard::compute_with(ctx);
            (scorecard::render(&r), serde_json::to_string_pretty(&r).expect("serialize"))
        }
        other => unreachable!("artifact `{other}` validated in main"),
    }
}
