//! `repro` — regenerate the tables and figures of Choi et al. (IPDPS 2014).
//!
//! ```text
//! repro <artifact> [--fast] [--csv DIR] [--threads N] [--inject SPEC]
//!
//! artifacts:
//!   table1         Table I  — platform summary (paper vs re-fitted)
//!   fig1           Fig. 1   — GTX Titan vs Arndale GPU (+ power-matched array)
//!   fig4           Fig. 4   — capped vs uncapped error distributions + K-S
//!   fig5           Fig. 5   — normalized power vs intensity, 12 platforms
//!   fig6           Fig. 6   — power under caps Δπ/k
//!   fig7a | fig7b  Fig. 7   — performance / energy-efficiency under caps
//!   vc-energy      §V-C     — streaming energy per byte worked example
//!   vc-constpower  §V-C     — constant-power fraction + correlation
//!   vd-bounding    §V-D     — power bounding comparison
//!   ext-arndale    extension: utilization-scaled capping ablation
//!   ext-network    extension: interconnect-cost erosion of Fig. 1
//!   ext-bounding   extension: §V-D generalized to all platform pairs
//!   ext-dvfs       extension: energy-optimal DVFS frequencies
//!   scorecard      every headline claim checked with a PASS/DEVIATION verdict
//!   all            everything above
//!
//! flags:
//!   --fast         smaller simulated sweeps (quick smoke runs)
//!   --csv DIR      also write machine-readable JSON reports into DIR
//!   --threads N    worker threads for the simulation sweeps (default: all
//!                  cores, or the ARCHLINE_THREADS environment variable)
//!   --inject SPEC  corrupt one platform's DRAM measurements with a seeded
//!                  fault before fitting (repeatable). SPEC is
//!                  `PLATFORM:CLASS:SEVERITY[:SEED]`, e.g.
//!                  `Arndale GPU:spike:0.2:7`. Classes: drop, duplicate,
//!                  out-of-order, clock-skew, jitter, spike, quantize,
//!                  counter-wrap, rail-dropout, fail-run.
//! ```
//!
//! All artifacts computed in one invocation share an
//! [`archline_repro::AnalysisContext`], so `repro all` runs the 12-platform
//! measurement-and-fit sweep exactly once. Per-artifact wall times go to
//! stderr; `repro all` additionally writes them to `BENCH_repro.json`
//! (emitted even when some artifacts fail, with the failures recorded).
//!
//! **Degradation contract**: a platform whose measure-and-fit fails — or
//! that `--inject` corrupts past fitability — is dropped from the sweep and
//! marked DEGRADED in Table I and the scorecard; artifacts that crash or
//! error are reported in an end-of-run failure summary instead of aborting
//! the rest. Exit status: `0` when everything succeeded, `3` when some
//! artifacts succeeded but platforms were degraded or artifacts failed
//! (partial failure), `1` when no artifact succeeded, `2` for usage errors.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use archline_faults::{FaultPlan, FaultSpec};
use archline_microbench::SweepConfig;
use archline_repro::{
    analysis, ext, failure::panic_message, fig1, fig4, fig5, fig6, fig7, scorecard, section_vc,
    section_vd, table1, AnalysisContext, ArtifactError,
};

const ARTIFACTS: &[&str] = &[
    "table1",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7a",
    "fig7b",
    "vc-energy",
    "vc-constpower",
    "vd-bounding",
    "ext-arndale",
    "ext-network",
    "ext-bounding",
    "ext-dvfs",
    "scorecard",
];

const EXIT_TOTAL_FAILURE: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_PARTIAL_FAILURE: i32 = 3;

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("repro: {error}");
    }
    eprintln!(
        "usage: repro <artifact> [--fast] [--csv DIR] [--threads N] \
         [--inject 'PLATFORM:CLASS:SEVERITY[:SEED]']\n\
         artifacts: {} | all",
        ARTIFACTS.join(" | ")
    );
    std::process::exit(EXIT_USAGE);
}

/// Parses one `--inject` value: `PLATFORM:CLASS:SEVERITY[:SEED]`.
fn parse_inject(value: &str) -> Result<(String, FaultSpec), String> {
    let (platform, spec) = value
        .split_once(':')
        .ok_or_else(|| format!("--inject `{value}`: expected PLATFORM:CLASS:SEVERITY[:SEED]"))?;
    let known = archline_repro::platforms_by_peak_efficiency();
    if !known.iter().any(|p| p.name == platform) {
        return Err(format!(
            "--inject: unknown platform `{platform}` (one of: {})",
            known.iter().map(|p| p.name.as_str()).collect::<Vec<_>>().join(", ")
        ));
    }
    let spec = FaultSpec::parse(spec).map_err(|e| format!("--inject: {e}"))?;
    Ok((platform.to_string(), spec))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut csv_dir: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut artifact: Option<String> = None;
    let mut injections: Vec<(String, FaultSpec)> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(dir.clone()),
                None => usage("--csv needs a directory"),
            },
            "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => threads = Some(n),
                Some(Err(_)) => usage("--threads needs a positive integer"),
                None => usage("--threads needs a positive integer"),
            },
            "--inject" => match it.next() {
                Some(value) => match parse_inject(value) {
                    Ok(inj) => injections.push(inj),
                    Err(e) => usage(&e),
                },
                None => usage("--inject needs PLATFORM:CLASS:SEVERITY[:SEED]"),
            },
            name if !name.starts_with("--") && artifact.is_none() => {
                artifact = Some(name.to_string());
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let artifact = artifact.unwrap_or_else(|| usage(""));
    if artifact != "all" && !ARTIFACTS.contains(&artifact.as_str()) {
        usage(&format!("unknown artifact `{artifact}`"));
    }
    if let Some(n) = threads {
        if let Err(e) = archline_par::set_num_threads(n) {
            usage(&format!("--threads {n}: {e}"));
        }
    }

    // Fold repeated --inject specs into one ordered plan per platform.
    let mut sabotage: Vec<(String, FaultPlan)> = Vec::new();
    for (platform, spec) in injections {
        match sabotage.iter_mut().find(|(name, _)| *name == platform) {
            Some((_, plan)) => plan.specs.push(spec),
            None => sabotage.push((platform, FaultPlan::new(vec![spec]))),
        }
    }

    let cfg = if fast { analysis::fast_config() } else { SweepConfig::default() };
    // One shared context: every artifact below reuses the same 12-platform
    // sweep instead of re-running it.
    let ctx = AnalysisContext::with_sabotage(cfg, sabotage);
    let all = artifact == "all";
    let names: Vec<&str> = if all { ARTIFACTS.to_vec() } else { vec![artifact.as_str()] };
    let attempted = names.len();

    let total_start = Instant::now();
    let mut timings: Vec<(&str, f64)> = Vec::new();
    let mut failed: Vec<(&str, String)> = Vec::new();
    for name in names {
        let start = Instant::now();
        // Isolate each artifact: a panic (or error) in one must not take
        // down the rest of `repro all`.
        let outcome = catch_unwind(AssertUnwindSafe(|| run_one(name, &ctx, fast, &csv_dir)));
        let result = match outcome {
            Ok(r) => r,
            Err(payload) => Err(ArtifactError::new(panic_message(payload))),
        };
        let secs = start.elapsed().as_secs_f64();
        timings.push((name, secs));
        eprintln!("[time] {name}: {secs:.3}s");
        if let Err(e) = result {
            eprintln!("repro: ERROR: {name}: {e}");
            failed.push((name, e.message));
        }
    }
    let total = total_start.elapsed().as_secs_f64();
    eprintln!("[time] total: {total:.3}s");

    // Degraded platforms, without forcing the sweep for artifacts that
    // never needed it (fig1, the model-only extensions).
    let degraded: Vec<(String, String)> = if ctx.sweep_misses() > 0 {
        ctx.failures().iter().map(|f| (f.name.clone(), f.error.clone())).collect()
    } else {
        Vec::new()
    };

    let exit = if failed.is_empty() && degraded.is_empty() {
        0
    } else if failed.len() == attempted {
        EXIT_TOTAL_FAILURE
    } else {
        EXIT_PARTIAL_FAILURE
    };

    if all {
        write_bench(&timings, total, &failed, &degraded);
    }

    // End-of-run failure summary (stderr, after all artifact output).
    if !degraded.is_empty() || !failed.is_empty() {
        eprintln!("repro: failure summary");
        if !degraded.is_empty() {
            eprintln!("  degraded platforms ({} of 12):", degraded.len());
            for (name, reason) in &degraded {
                eprintln!("    {name} — {reason}");
            }
        }
        if !failed.is_empty() {
            eprintln!("  failed artifacts ({} of {attempted}):", failed.len());
            for (name, reason) in &failed {
                eprintln!("    {name} — {reason}");
            }
        }
        let kind = if exit == EXIT_TOTAL_FAILURE { "total" } else { "partial" };
        eprintln!("repro: exiting {exit} ({kind} failure)");
    }
    std::process::exit(exit);
}

/// Computes, prints, and (optionally) persists one artifact.
fn run_one(
    name: &str,
    ctx: &AnalysisContext,
    fast: bool,
    csv_dir: &Option<String>,
) -> Result<(), ArtifactError> {
    let (text, json) = run_artifact(name, ctx, fast)?;
    println!("{text}");
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| ArtifactError::new(format!("create output dir {dir}: {e}")))?;
        let path = format!("{dir}/{name}.json");
        std::fs::write(&path, json)
            .map_err(|e| ArtifactError::new(format!("write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Serializes a report, mapping serializer errors into the failure path.
fn to_json<T: serde::Serialize>(name: &str, report: &T) -> Result<String, ArtifactError> {
    serde_json::to_string_pretty(report)
        .map_err(|e| ArtifactError::new(format!("serialize {name}: {e}")))
}

/// Writes `BENCH_repro.json` — always, even on partial failure, so a
/// degraded run still leaves a machine-readable record of what completed.
fn write_bench(
    timings: &[(&str, f64)],
    total: f64,
    failed: &[(&str, String)],
    degraded: &[(String, String)],
) {
    let mut bench = serde_json::Map::new();
    for (name, secs) in timings {
        bench.insert((*name).to_string(), serde_json::Value::from(*secs));
    }
    bench.insert("total".to_string(), serde_json::Value::from(total));
    let status = if failed.is_empty() && degraded.is_empty() {
        "ok"
    } else if failed.len() == timings.len() {
        "failed"
    } else {
        "partial"
    };
    bench.insert("status".to_string(), serde_json::Value::from(status));
    if !failed.is_empty() {
        let list = failed.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ");
        bench.insert("failed_artifacts".to_string(), serde_json::Value::from(list));
    }
    if !degraded.is_empty() {
        let list = degraded.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(", ");
        bench.insert("degraded_platforms".to_string(), serde_json::Value::from(list));
    }
    let body = match serde_json::to_string_pretty(&serde_json::Value::Object(bench)) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("repro: warning: serialize BENCH_repro.json: {e}");
            return;
        }
    };
    match std::fs::write("BENCH_repro.json", body) {
        Ok(()) => eprintln!("wrote BENCH_repro.json"),
        Err(e) => eprintln!("repro: warning: write BENCH_repro.json: {e}"),
    }
}

fn run_artifact(
    name: &str,
    ctx: &AnalysisContext,
    fast: bool,
) -> Result<(String, String), ArtifactError> {
    match name {
        "table1" => {
            let r = table1::compute_with(ctx, !fast);
            Ok((table1::render(&r), to_json(name, &r)?))
        }
        "fig1" => {
            let r = fig1::compute(if fast { 9 } else { 17 });
            Ok((fig1::render(&r), to_json(name, &r)?))
        }
        "fig4" => {
            let r = fig4::compute_with(ctx);
            Ok((fig4::render(&r), to_json(name, &r)?))
        }
        "fig5" => {
            let r = fig5::compute_with(ctx);
            Ok((fig5::render(&r), to_json(name, &r)?))
        }
        "fig6" => {
            let r = fig6::compute_with(ctx);
            Ok((fig6::render(&r), to_json(name, &r)?))
        }
        "fig7a" => {
            let r = fig7::compute_with(ctx, fig7::Fig7Kind::Performance);
            Ok((fig7::render(&r), to_json(name, &r)?))
        }
        "fig7b" => {
            let r = fig7::compute_with(ctx, fig7::Fig7Kind::EnergyEfficiency);
            Ok((fig7::render(&r), to_json(name, &r)?))
        }
        "vc-energy" | "vc-constpower" => {
            let r = section_vc::compute_with(ctx);
            Ok((section_vc::render(&r), to_json(name, &r)?))
        }
        "vd-bounding" => {
            let r = section_vd::compute_with(ctx);
            Ok((section_vd::render(&r), to_json(name, &r)?))
        }
        "ext-arndale" => {
            let r = ext::arndale_ablation_with(ctx)?;
            Ok((ext::render_arndale(&r), to_json(name, &r)?))
        }
        "ext-network" => {
            let r = ext::network_erosion()?;
            Ok((ext::render_network(&r), to_json(name, &r)?))
        }
        "ext-bounding" => {
            let r = ext::bounding_matrix()?;
            Ok((ext::render_bounding(&r), to_json(name, &r)?))
        }
        "ext-dvfs" => {
            let r = ext::dvfs_whatif()?;
            Ok((ext::render_dvfs(&r), to_json(name, &r)?))
        }
        "scorecard" => {
            let r = scorecard::compute_with(ctx);
            Ok((scorecard::render(&r), to_json(name, &r)?))
        }
        other => Err(ArtifactError::new(format!("artifact `{other}` validated in main"))),
    }
}
