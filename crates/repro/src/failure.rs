//! Structured failure reporting for the degradation-aware pipeline.
//!
//! A corrupt platform or a crashing artifact must not take `repro all`
//! down with it: per-platform fit failures become [`PlatformFailure`]
//! records carried by the shared context, per-artifact errors become
//! [`ArtifactError`]s collected into the end-of-run failure summary, and
//! panics from either level are caught and converted via
//! [`panic_message`].

use serde::{Deserialize, Serialize};

/// One platform the 12-platform sweep could not measure-and-fit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformFailure {
    /// Platform name (Table I spelling).
    pub name: String,
    /// What went wrong (a `FitError` rendering or a panic payload).
    pub error: String,
    /// `true` when the failure was a caught panic rather than a typed
    /// fit error.
    pub panicked: bool,
}

impl std::fmt::Display for PlatformFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name, self.error)
    }
}

/// Why one artifact could not be produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactError {
    /// Human-readable cause.
    pub message: String,
}

impl ArtifactError {
    /// An error from any displayable cause.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ArtifactError {}

impl From<String> for ArtifactError {
    fn from(message: String) -> Self {
        Self { message }
    }
}

impl From<&str> for ArtifactError {
    fn from(message: &str) -> Self {
        Self { message: message.to_string() }
    }
}

/// Extracts the human-readable message from a caught panic payload
/// (`std::panic::catch_unwind`'s `Err` value).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn panic_messages_extracted_from_both_payload_shapes() {
        let e = catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(panic_message(e), "static message");
        let n = 7;
        let e = catch_unwind(AssertUnwindSafe(|| panic!("formatted {n}"))).unwrap_err();
        assert_eq!(panic_message(e), "formatted 7");
    }

    #[test]
    fn artifact_error_displays_its_message() {
        let e = ArtifactError::new("fig5: no panels");
        assert_eq!(e.to_string(), "fig5: no panels");
        let e: ArtifactError = "from str".into();
        assert_eq!(e.message, "from str");
    }

    #[test]
    fn platform_failure_displays_name_and_cause() {
        let f = PlatformFailure {
            name: "Arndale GPU".into(),
            error: "need at least 4 intensity runs, got 0".into(),
            panicked: false,
        };
        assert_eq!(f.to_string(), "Arndale GPU: need at least 4 intensity runs, got 0");
    }
}
