//! Fig. 4: capped vs. uncapped power-prediction error distributions per
//! platform, with the two-sample Kolmogorov–Smirnov significance test.

use serde::{Deserialize, Serialize};

use archline_fit::{relative_errors, select_model, ErrorKind};
use archline_microbench::SweepConfig;
use archline_stats::{
    boxplot, ks_two_sample, mann_whitney_u, quantile, BoxplotStats, KsResult, MannWhitneyResult,
};

use crate::analysis::PlatformAnalysis;
use crate::context::AnalysisContext;
use crate::render::{sig3, TextTable};

/// Error distributions for one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Platform name.
    pub name: String,
    /// Relative power errors of the capped fit, one per intensity point.
    pub capped_errors: Vec<f64>,
    /// Relative power errors of the uncapped fit.
    pub uncapped_errors: Vec<f64>,
    /// Boxplot of the capped errors.
    pub capped_box: BoxplotStats,
    /// Boxplot of the uncapped errors.
    pub uncapped_box: BoxplotStats,
    /// K-S test between the two error samples.
    pub ks: KsResult,
    /// Mann–Whitney U cross-check (location-shift sensitive, where K-S is
    /// sensitive to any distributional difference).
    pub mann_whitney: MannWhitneyResult,
    /// Which model family AICc prefers for this platform's data
    /// ("capped" or "uncapped"), penalizing the capped model's extra `Δπ`.
    pub aic_preferred: String,
    /// `true` when the distributions differ at p < 0.05 — the paper's
    /// "**" mark.
    pub starred: bool,
    /// Whether the paper's Fig. 4 stars this platform.
    pub paper_starred: bool,
    /// K-S on *time* errors (the paper: "we have similar data for time and
    /// energy, omitted for space").
    pub time_ks: KsResult,
    /// K-S on *energy* errors.
    pub energy_ks: KsResult,
}

impl Fig4Row {
    /// Median of the absolute uncapped errors (the paper sorts panels by
    /// descending uncapped median error).
    pub fn uncapped_median_abs(&self) -> f64 {
        let abs: Vec<f64> = self.uncapped_errors.iter().map(|e| e.abs()).collect();
        quantile(&abs, 0.5)
    }

    /// Median of the absolute capped errors.
    pub fn capped_median_abs(&self) -> f64 {
        let abs: Vec<f64> = self.capped_errors.iter().map(|e| e.abs()).collect();
        quantile(&abs, 0.5)
    }
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Report {
    /// One row per platform, sorted by descending uncapped median error
    /// (the paper's x-axis order).
    pub rows: Vec<Fig4Row>,
}

impl Fig4Report {
    /// Number of platforms where our star matches the paper's.
    pub fn star_agreement(&self) -> usize {
        self.rows.iter().filter(|r| r.starred == r.paper_starred).count()
    }
}

/// Regenerates Fig. 4 from simulated measurements.
pub fn compute(cfg: &SweepConfig) -> Fig4Report {
    compute_with(&AnalysisContext::new(*cfg))
}

/// Regenerates Fig. 4 from a shared [`AnalysisContext`] (no re-sweep).
pub fn compute_with(ctx: &AnalysisContext) -> Fig4Report {
    let mut rows: Vec<Fig4Row> = ctx.analyses().iter().map(row_for).collect();
    rows.sort_by(|a, b| {
        b.uncapped_median_abs()
            .partial_cmp(&a.uncapped_median_abs())
            .expect("finite medians")
    });
    Fig4Report { rows }
}

fn row_for(a: &PlatformAnalysis) -> Fig4Row {
    let capped_errors = relative_errors(&a.fit.capped, &a.suite.dram.runs, ErrorKind::Power);
    let uncapped_errors =
        relative_errors(&a.fit.uncapped, &a.suite.dram.runs, ErrorKind::Power);
    let ks = ks_two_sample(&capped_errors, &uncapped_errors);
    let mann_whitney = mann_whitney_u(&capped_errors, &uncapped_errors);
    let rss = |errs: &[f64]| errs.iter().map(|e| e * e).sum::<f64>().max(1e-300);
    // Capped model fits 6 parameters (τ_f, τ_m, ε_f, ε_m, π_1, Δπ);
    // uncapped fits 5.
    let ranked = select_model(
        &[("capped", 6, rss(&capped_errors)), ("uncapped", 5, rss(&uncapped_errors))],
        capped_errors.len(),
    );
    let time_ks = ks_two_sample(
        &relative_errors(&a.fit.capped, &a.suite.dram.runs, ErrorKind::Time),
        &relative_errors(&a.fit.uncapped, &a.suite.dram.runs, ErrorKind::Time),
    );
    let energy_ks = ks_two_sample(
        &relative_errors(&a.fit.capped, &a.suite.dram.runs, ErrorKind::Energy),
        &relative_errors(&a.fit.uncapped, &a.suite.dram.runs, ErrorKind::Energy),
    );
    Fig4Row {
        name: a.platform.name.clone(),
        capped_box: boxplot(&capped_errors),
        uncapped_box: boxplot(&uncapped_errors),
        starred: ks.significant_at(0.05),
        paper_starred: a.platform.ks_starred,
        aic_preferred: ranked[0].name.clone(),
        capped_errors,
        uncapped_errors,
        ks,
        mann_whitney,
        time_ks,
        energy_ks,
    }
}

/// Renders the per-platform error summary.
pub fn render(report: &Fig4Report) -> String {
    let mut t = TextTable::new(vec![
        "Platform",
        "uncap med", "uncap q3",
        "cap med", "cap q3",
        "KS D", "p",
        "MW p",
        "AICc",
        "stars", "paper",
    ]);
    for r in &report.rows {
        t.row(vec![
            r.name.clone(),
            sig3(r.uncapped_box.median),
            sig3(r.uncapped_box.q3),
            sig3(r.capped_box.median),
            sig3(r.capped_box.q3),
            sig3(r.ks.statistic),
            format!("{:.3}", r.ks.p_value),
            format!("{:.3}", r.mann_whitney.p_value),
            r.aic_preferred.clone(),
            if r.starred { "**" } else { "" }.to_string(),
            if r.paper_starred { "**" } else { "" }.to_string(),
        ]);
    }
    format!(
        "Fig. 4: power prediction error, uncapped (prior) vs capped model\n\
         (relative error distributions over the intensity sweep; ** = K-S p < 0.05)\n\n{}\
         Star agreement with the paper: {}/12\n",
        t.render(),
        report.star_agreement()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fast_config;

    #[test]
    fn capped_model_dominates_uncapped() {
        let report = compute(&fast_config());
        assert_eq!(report.rows.len(), 12);
        // The paper's headline qualitative claim: the capped model's error
        // distributions are lower or tighter on every platform.
        for r in &report.rows {
            assert!(
                r.capped_median_abs() <= r.uncapped_median_abs() + 0.02,
                "{}: capped {} vs uncapped {}",
                r.name,
                r.capped_median_abs(),
                r.uncapped_median_abs()
            );
        }
    }

    #[test]
    fn star_pattern_matches_paper_on_ten_of_twelve() {
        // Documented deviations (EXPERIMENTS.md): the Xeon Phi and APU GPU
        // are starred in the paper but their cap plateaus are ≤1.5 % power
        // effects over ≤1 octave of intensity given Table I's own
        // constants — undetectable from the published model; the paper's
        // stars there must reflect empirical effects beyond those
        // constants. All other ten platforms must match.
        let report = compute(&fast_config());
        assert!(report.star_agreement() >= 10, "agreement {}/12", report.star_agreement());
        for r in &report.rows {
            match r.name.as_str() {
                "Xeon Phi" | "APU GPU" => {}
                _ => assert_eq!(
                    r.starred, r.paper_starred,
                    "{}: star mismatch (p = {})",
                    r.name, r.ks.p_value
                ),
            }
        }
    }

    #[test]
    fn aic_prefers_capped_exactly_where_it_earns_its_parameter() {
        // On K-S-starred platforms the cap term buys large RSS reductions,
        // so AICc must pick the capped family; on Titan/Desktop-class
        // platforms where the two fits coincide, the uncapped family's
        // fewer parameters may win — but never by explaining the data
        // better.
        let report = compute(&fast_config());
        for r in &report.rows {
            if r.starred {
                assert_eq!(r.aic_preferred, "capped", "{}", r.name);
            }
        }
        let capped_wins = report.rows.iter().filter(|r| r.aic_preferred == "capped").count();
        assert!(capped_wins >= 5, "capped preferred on only {capped_wins}/12");
    }

    #[test]
    fn mann_whitney_never_contradicts_ks() {
        // Because both fits minimize squared error, each error sample is
        // re-centered near zero: the capped-vs-uncapped difference is a
        // *shape/tail* effect (excess mass at high overprediction in the
        // cap region), which K-S detects but a location test cannot. The
        // U test must therefore be the weaker of the two — it may fail to
        // reject on starred platforms, but must never reject where K-S
        // does not.
        let report = compute(&fast_config());
        for r in &report.rows {
            assert!((0.0..=1.0).contains(&r.mann_whitney.p_value), "{}", r.name);
            if r.mann_whitney.significant_at(0.05) {
                assert!(
                    r.starred,
                    "{}: MW rejects (p={}) where K-S does not (p={})",
                    r.name, r.mann_whitney.p_value, r.ks.p_value
                );
            }
        }
    }

    #[test]
    fn time_and_energy_views_corroborate_the_power_view() {
        // The paper's omitted-for-space time/energy distributions should
        // separate at least as strongly where the cap slows execution: on
        // the power-starred platforms, time-error K-S must also reject.
        let report = compute(&fast_config());
        for r in &report.rows {
            if r.starred {
                assert!(
                    r.time_ks.significant_at(0.05) || r.energy_ks.significant_at(0.05),
                    "{}: time p={} energy p={}",
                    r.name,
                    r.time_ks.p_value,
                    r.energy_ks.p_value
                );
            }
        }
    }

    #[test]
    fn uncapped_errors_bias_positive_in_cap_region() {
        // The paper: "the bias is to overpredict". Uncapped q3 should sit
        // clearly positive on starred platforms.
        let report = compute(&fast_config());
        let starred: Vec<_> = report.rows.iter().filter(|r| r.paper_starred).collect();
        let positive = starred.iter().filter(|r| r.uncapped_box.q3 > 0.0).count();
        assert!(positive >= starred.len() - 1, "{positive}/{}", starred.len());
    }
}
