//! Beyond-the-paper extension analyses, exercising the model refinements
//! the paper names as future work:
//!
//! 1. **Arndale capping ablation** — the paper conjectures the Arndale
//!    GPU's mid-intensity mispredictions come from "active energy-
//!    efficiency scaling with respect to utilization" (§V-C). We fit the
//!    utilization-scaled model of [`archline_core::extended`] to the
//!    simulated Arndale measurements and compare its power errors against
//!    the clean capped model's.
//! 2. **Interconnect erosion** — Fig. 1's best case "ignores the
//!    significant costs of an interconnection network". We sweep per-node
//!    network power and bandwidth efficiency to find where the Arndale
//!    array's 1.6× bandwidth edge over the GTX Titan vanishes.
//! 3. **DVFS what-if** — energy-optimal relative core frequency as a
//!    function of intensity, per platform (the knob the paper's power cap
//!    generalizes; Rountree et al.).

use serde::{Deserialize, Serialize};

use archline_core::{
    power_match_with, DvfsModel, EnergyRoofline, Interconnect, UtilizationScaledModel, Workload,
};
use archline_core::extended::fit_depth;
use archline_microbench::SweepConfig;
use archline_platforms::{platform, PlatformId, Precision};

use crate::context::AnalysisContext;
use crate::failure::ArtifactError;
use crate::render::{pct, sig3, TextTable};

/// Single-precision machine params for a Table I record, as an artifact
/// error when absent (every Table I platform publishes single precision,
/// but the failure path must not panic).
fn single_params(
    rec: &archline_platforms::Platform,
) -> Result<archline_core::MachineParams, ArtifactError> {
    rec.machine_params(Precision::Single)
        .map_err(|e| ArtifactError::new(format!("{}: no single-precision constants: {e}", rec.name)))
}

// ---------------------------------------------------------------------------
// 1. Arndale capping ablation
// ---------------------------------------------------------------------------

/// Result of the utilization-scaled-model ablation on the Arndale GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArndaleAblation {
    /// Fitted efficiency-scaling depth `γ`.
    pub fitted_depth: f64,
    /// Ground-truth depth used by the simulator quirk.
    pub true_depth: f64,
    /// RMS relative power error of the clean capped model.
    pub clean_rmse: f64,
    /// RMS relative power error of the utilization-scaled model.
    pub scaled_rmse: f64,
    /// Worst-case clean-model error (the paper's "< 15 %" mispredictions).
    pub clean_max: f64,
}

/// Runs the Arndale ablation.
///
/// The comparison is anchored on the *published* Table I constants (as the
/// paper's Fig. 5 is): a free refit would simply absorb the dip into a
/// lower Δπ, hiding the effect the refinement is meant to explain. (The
/// refit is still performed; its diagnostics are not used here.)
pub fn arndale_ablation(cfg: &SweepConfig) -> Result<ArndaleAblation, ArtifactError> {
    arndale_ablation_with(&AnalysisContext::new(*cfg))
}

/// Runs the Arndale ablation from a shared [`AnalysisContext`], reusing the
/// context's Arndale GPU suite and refit (bit-identical inputs: same spec,
/// config, and seeds as a standalone sweep). Errors when the Arndale GPU is
/// missing from the sweep — i.e. its measure-and-fit was degraded.
pub fn arndale_ablation_with(ctx: &AnalysisContext) -> Result<ArndaleAblation, ArtifactError> {
    let a = ctx
        .analyses()
        .iter()
        .find(|a| a.platform.id == PlatformId::ArndaleGpu)
        .ok_or_else(|| {
            ArtifactError::new("Arndale GPU missing from the sweep (platform degraded)")
        })?;
    let (rec, spec, suite) = (&a.platform, &a.spec, &a.suite);
    let table1_params = single_params(rec)?;

    let observations: Vec<(Workload, f64)> = suite
        .dram
        .runs
        .iter()
        .map(|r| (Workload::new(r.flops, r.bytes), r.avg_power()))
        .collect();
    let gamma = fit_depth(&table1_params, &observations);
    let scaled = UtilizationScaledModel::new(table1_params, gamma);
    let clean = EnergyRoofline::new(table1_params);

    let mut clean_sq = 0.0;
    let mut scaled_sq = 0.0;
    let mut clean_max = 0.0f64;
    for (w, measured) in &observations {
        let ce = (clean.avg_power(w) - measured) / measured;
        let se = (scaled.avg_power(w) - measured) / measured;
        clean_sq += ce * ce;
        scaled_sq += se * se;
        clean_max = clean_max.max(ce.abs());
    }
    let n = observations.len() as f64;
    let true_depth = match spec.quirk {
        archline_machine::Quirk::UtilizationScaling { depth } => depth,
        _ => 0.0,
    };
    Ok(ArndaleAblation {
        fitted_depth: gamma,
        true_depth,
        clean_rmse: (clean_sq / n).sqrt(),
        scaled_rmse: (scaled_sq / n).sqrt(),
        clean_max,
    })
}

/// Renders the ablation.
pub fn render_arndale(a: &ArndaleAblation) -> String {
    format!(
        "Extension 1: utilization-scaled capping on the Arndale GPU\n\n\
         fitted efficiency depth γ : {} (simulator ground truth {})\n\
         clean capped model  power RMSE {} (max {})\n\
         utilization-scaled  power RMSE {}  ({}x lower)\n\
         (the paper observed ≤15% mid-intensity mispredictions and proposed\n\
          exactly this refinement; the scaled model absorbs them)\n",
        sig3(a.fitted_depth),
        sig3(a.true_depth),
        pct(a.clean_rmse),
        pct(a.clean_max),
        pct(a.scaled_rmse),
        sig3(a.clean_rmse / a.scaled_rmse.max(1e-12)),
    )
}

// ---------------------------------------------------------------------------
// 2. Interconnect erosion
// ---------------------------------------------------------------------------

/// One point of the network-overhead sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkPoint {
    /// Per-node network power, W.
    pub per_node_watts: f64,
    /// Delivered-bandwidth efficiency.
    pub bandwidth_efficiency: f64,
    /// Boards that fit the Titan's power budget.
    pub boards: u32,
    /// Aggregate-bandwidth advantage over the Titan (1.0 = parity).
    pub bandwidth_advantage: f64,
}

/// The network-erosion sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkErosion {
    /// Sweep points.
    pub points: Vec<NetworkPoint>,
    /// Smallest per-node power (at efficiency 0.9) at which the advantage
    /// drops below parity, if reached within the sweep.
    pub break_even_watts: Option<f64>,
}

/// Sweeps interconnect overheads for the Fig. 1 Arndale-array scenario.
pub fn network_erosion() -> Result<NetworkErosion, ArtifactError> {
    let titan = single_params(&platform(PlatformId::GtxTitan))?;
    let arndale = single_params(&platform(PlatformId::ArndaleGpu))?;
    let budget = titan.const_power + titan.cap.watts();
    let titan_model = EnergyRoofline::new(titan);

    let mut points = Vec::new();
    for &eff in &[1.0, 0.9, 0.8] {
        for &watts in &[0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0] {
            let net = Interconnect { per_node_watts: watts, bandwidth_efficiency: eff };
            let rep = power_match_with(&arndale, &net, budget);
            let agg = EnergyRoofline::new(rep.aggregate_with(&net));
            points.push(NetworkPoint {
                per_node_watts: watts,
                bandwidth_efficiency: eff,
                boards: rep.n,
                bandwidth_advantage: agg.peak_bandwidth() / titan_model.peak_bandwidth(),
            });
        }
    }
    let break_even_watts = points
        .iter()
        // lint:allow(float-discipline, reason = "selects the 0.9 row of the efficiency grid; the literal is propagated verbatim from the grid constant, never computed")
        .filter(|p| p.bandwidth_efficiency == 0.9 && p.bandwidth_advantage < 1.0)
        .map(|p| p.per_node_watts)
        .fold(None, |acc: Option<f64>, w| Some(acc.map_or(w, |a| a.min(w))));
    Ok(NetworkErosion { points, break_even_watts })
}

/// Renders the sweep.
pub fn render_network(n: &NetworkErosion) -> String {
    let mut t = TextTable::new(vec!["net W/node", "bw eff", "boards", "bw advantage"]);
    for p in &n.points {
        t.row(vec![
            sig3(p.per_node_watts),
            pct(p.bandwidth_efficiency),
            p.boards.to_string(),
            format!("{}x", sig3(p.bandwidth_advantage)),
        ]);
    }
    format!(
        "Extension 2: interconnect costs vs the Fig. 1 best case\n\
         (47x Arndale array's bandwidth edge over one GTX Titan)\n\n{}\
         break-even per-node network power at 90% efficiency: {}\n\
         (the paper: with real network costs the array is 'more likely to\n\
          improve upon GTX Titan only marginally or not at all')\n",
        t.render(),
        n.break_even_watts.map_or("not reached".to_string(), |w| format!("{} W", sig3(w))),
    )
}

// ---------------------------------------------------------------------------
// 2b. Power-bounding matrix (generalizing §V-D to all pairs)
// ---------------------------------------------------------------------------

/// One big-node row of the bounding matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundingRow {
    /// The big node being power-bounded.
    pub big: String,
    /// The budget: the big node at `Δπ/8`, W.
    pub budget: f64,
    /// Speedup of each candidate small-node array over the bounded big
    /// node, `(small name, n nodes, speedup)`, best first.
    pub alternatives: Vec<(String, u32, f64)>,
}

/// The §V-D analysis for every (big, small) platform pair at `I = 0.25`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundingMatrix {
    /// One row per big node (platforms with `π_1 + Δπ/8` still above the
    /// smallest candidate's node power).
    pub rows: Vec<BoundingRow>,
}

/// Computes the full power-bounding matrix: bound each platform to its own
/// `Δπ/8` budget and ask which other platform, replicated into the same
/// budget, runs an `I = 0.25` (SpMV-like) workload fastest.
pub fn bounding_matrix() -> Result<BoundingMatrix, ArtifactError> {
    use archline_core::power_bounding;
    let platforms = crate::platforms_by_peak_efficiency();
    let intensity = 0.25;
    let mut rows = Vec::new();
    for big in &platforms {
        let big_params = single_params(big)?;
        let budget = big_params.const_power + big_params.cap.watts() / 8.0;
        let mut alternatives = Vec::new();
        for small in platforms.iter().filter(|s| s.id != big.id && s.max_power() <= budget) {
            let small_params = single_params(small)?;
            let out = power_bounding(&big_params, &small_params, budget, intensity);
            alternatives.push((small.name.clone(), out.small_nodes, out.ensemble_speedup));
        }
        alternatives.sort_by(|a: &(String, u32, f64), b| b.2.total_cmp(&a.2));
        rows.push(BoundingRow { big: big.name.clone(), budget, alternatives });
    }
    Ok(BoundingMatrix { rows })
}

/// Renders the top alternative per bounded platform.
pub fn render_bounding(m: &BoundingMatrix) -> String {
    let mut t = TextTable::new(vec![
        "bounded platform", "budget W", "best alternative", "nodes", "speedup",
    ]);
    for r in &m.rows {
        match r.alternatives.first() {
            Some((name, n, speedup)) => t.row(vec![
                r.big.clone(),
                sig3(r.budget),
                name.clone(),
                n.to_string(),
                format!("{}x", sig3(*speedup)),
            ]),
            None => t.row(vec![
                r.big.clone(),
                sig3(r.budget),
                "(none fits)".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        };
    }
    format!(
        "Extension 2b: §V-D generalized — bound each platform to its Δπ/8\n\
         budget; which other block, replicated into that budget, runs an\n\
         I = 0.25 workload fastest?\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// 3. DVFS what-if
// ---------------------------------------------------------------------------

/// Energy-optimal relative frequency per intensity for one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsRow {
    /// Platform name.
    pub name: String,
    /// `(intensity, optimal relative frequency)` samples.
    pub optima: Vec<(f64, f64)>,
}

/// The DVFS what-if report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsReport {
    /// Per-platform optima.
    pub rows: Vec<DvfsRow>,
}

/// Computes energy-optimal frequencies for a representative platform trio.
pub fn dvfs_whatif() -> Result<DvfsReport, ArtifactError> {
    let intensities = [0.125, 0.5, 2.0, 8.0, 32.0, 128.0];
    let mut rows = Vec::new();
    for &id in &[PlatformId::GtxTitan, PlatformId::NucCpu, PlatformId::ArndaleCpu] {
        let rec = platform(id);
        let dvfs = DvfsModel::conventional(single_params(&rec)?);
        let optima = intensities
            .iter()
            .map(|&i| (i, dvfs.energy_optimal_frequency(i, 0.25, 1.5, 51).0))
            .collect();
        rows.push(DvfsRow { name: rec.name.clone(), optima });
    }
    Ok(DvfsReport { rows })
}

/// Renders the DVFS table.
pub fn render_dvfs(r: &DvfsReport) -> String {
    let mut t = TextTable::new(vec!["Platform", "I=1/8", "I=1/2", "I=2", "I=8", "I=32", "I=128"]);
    for row in &r.rows {
        let mut cells = vec![row.name.clone()];
        cells.extend(row.optima.iter().map(|(_, f)| sig3(*f)));
        t.row(cells);
    }
    format!(
        "Extension 3: energy-optimal relative core frequency by intensity\n\
         (first-order DVFS on top of the roofline; 1.0 = nominal clock)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::fast_config;

    #[test]
    fn scaled_model_halves_arndale_error() {
        let a = arndale_ablation(&fast_config()).unwrap();
        assert!(a.clean_max < 0.15, "paper bound: {}", a.clean_max);
        assert!(a.clean_max > 0.01, "quirk should be visible: {}", a.clean_max);
        assert!(
            a.scaled_rmse < 0.6 * a.clean_rmse,
            "scaled {} vs clean {}",
            a.scaled_rmse,
            a.clean_rmse
        );
        // Fitted depth lands near the simulator's ground truth (0.13).
        assert!((a.fitted_depth - a.true_depth).abs() < 0.06, "{}", a.fitted_depth);
    }

    #[test]
    fn network_overheads_erode_the_edge_monotonically() {
        let n = network_erosion().unwrap();
        // Ideal point reproduces Fig. 1.
        let ideal = n
            .points
            .iter()
            .find(|p| p.per_node_watts == 0.0 && p.bandwidth_efficiency == 1.0)
            .unwrap();
        assert!((ideal.bandwidth_advantage - 1.61).abs() < 0.1);
        // More network power → fewer boards and less advantage.
        for eff in [1.0, 0.9, 0.8] {
            let series: Vec<&NetworkPoint> =
                n.points.iter().filter(|p| p.bandwidth_efficiency == eff).collect();
            for pair in series.windows(2) {
                assert!(pair[1].boards <= pair[0].boards);
                assert!(pair[1].bandwidth_advantage <= pair[0].bandwidth_advantage + 1e-12);
            }
        }
        // A handful of Watts per node erases the edge entirely.
        assert!(n.break_even_watts.is_some());
        assert!(n.break_even_watts.unwrap() <= 6.0);
    }

    #[test]
    fn bounding_matrix_reproduces_the_papers_pair_and_more() {
        let m = bounding_matrix().unwrap();
        assert_eq!(m.rows.len(), 12);
        // The paper's pair: Titan bounded, Arndale GPU among alternatives
        // with 23 nodes and ≈2.6×.
        let titan = m.rows.iter().find(|r| r.big == "GTX Titan").unwrap();
        let arndale = titan
            .alternatives
            .iter()
            .find(|(name, _, _)| name == "Arndale GPU")
            .expect("Arndale fits the Titan budget");
        assert_eq!(arndale.1, 23);
        assert!((2.3..3.0).contains(&arndale.2), "{}", arndale.2);
        // Low-power boards cannot host a bounded-Titan-class replacement
        // the other way around: the Arndale GPU's Δπ/8 budget (< 2 W)
        // admits no other Table I platform.
        let arndale_row = m.rows.iter().find(|r| r.big == "Arndale GPU").unwrap();
        assert!(arndale_row.alternatives.is_empty(), "{:?}", arndale_row.alternatives);
        // Alternatives are sorted best-first.
        for r in &m.rows {
            for pair in r.alternatives.windows(2) {
                assert!(pair[0].2 >= pair[1].2);
            }
        }
    }

    #[test]
    fn dvfs_optima_increase_with_intensity_dependence() {
        let r = dvfs_whatif().unwrap();
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            // Memory-bound work never wants a *higher* clock than
            // compute-bound work on the same platform.
            let low = row.optima.first().unwrap().1;
            let high = row.optima.last().unwrap().1;
            assert!(low <= high + 1e-9, "{}: {low} vs {high}", row.name);
            for (_, f) in &row.optima {
                assert!((0.25..=1.5).contains(f));
            }
        }
    }

    #[test]
    fn renders_are_nonempty() {
        assert!(render_network(&network_erosion().unwrap()).contains("boards"));
        assert!(render_dvfs(&dvfs_whatif().unwrap()).contains("Platform"));
    }

    #[test]
    fn ablation_reports_degradation_instead_of_panicking() {
        use archline_faults::{FaultClass, FaultPlan};
        let plan = FaultPlan::single(FaultClass::FailRun, 1.0, 13);
        let ctx = AnalysisContext::with_sabotage(
            fast_config(),
            vec![("Arndale GPU".to_string(), plan)],
        );
        let err = arndale_ablation_with(&ctx).unwrap_err();
        assert!(err.message.contains("degraded"), "{err}");
    }
}
