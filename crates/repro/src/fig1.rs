//! Fig. 1: GTX Titan vs. Arndale GPU — time-efficiency, energy-efficiency,
//! and power across intensities, plus the power-matched "47 × Arndale GPU"
//! hypothetical system.

use serde::{Deserialize, Serialize};

use archline_core::power::sample_intensities;
use archline_core::{crossovers, power_match, EnergyRoofline, Metric};
use archline_machine::{spec_for, Engine, MeasurePlan};
use archline_platforms::{platform, PlatformId, Precision};

use crate::render::{sig3, TextTable};

/// One intensity sample of the three panels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig1Point {
    /// Intensity, flop:Byte.
    pub intensity: f64,
    /// GTX Titan value.
    pub titan: f64,
    /// Arndale GPU value.
    pub arndale: f64,
    /// Power-matched Arndale array value.
    pub array: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Report {
    /// Arndale GPUs needed to match the Titan's peak power.
    pub array_size: u32,
    /// Performance (flop/s), normalized to the Titan's peak.
    pub performance: Vec<Fig1Point>,
    /// Energy-efficiency (flop/J), normalized to the Titan's peak
    /// energy-efficiency.
    pub energy_eff: Vec<Fig1Point>,
    /// Average power (W), normalized to the Titan's peak power.
    pub power: Vec<Fig1Point>,
    /// Intensity where Arndale GPU and Titan tie on energy-efficiency.
    pub energy_crossover: Option<f64>,
    /// Aggregate-bandwidth advantage of the array over the Titan
    /// (the paper's "up to 1.6×").
    pub bandwidth_advantage: f64,
    /// Peak-performance ratio of the array vs. the Titan (the paper's
    /// "less than 1/2").
    pub peak_ratio: f64,
    /// Measured (simulated) energy-efficiency dots for both devices, as
    /// `(intensity, titan flop/J, arndale flop/J)` normalized like
    /// `energy_eff`.
    pub measured_energy_eff: Vec<(f64, f64, f64)>,
}

/// Regenerates Fig. 1. `measured_points` simulated dots are added per
/// device (0 to skip the simulation).
pub fn compute(measured_points: usize) -> Fig1Report {
    let titan_rec = platform(PlatformId::GtxTitan);
    let arndale_rec = platform(PlatformId::ArndaleGpu);
    let titan_params = titan_rec.machine_params(Precision::Single).expect("single");
    let arndale_params = arndale_rec.machine_params(Precision::Single).expect("single");
    let titan = EnergyRoofline::new(titan_params);
    let arndale = EnergyRoofline::new(arndale_params);

    // Match the Titan's peak modeled power π_1 + Δπ = 287 W.
    let rep = power_match(&arndale_params, titan_params.const_power + titan_params.cap.watts());
    let array = rep.model();

    let grid = sample_intensities(0.125, 256.0, 45);
    let perf_norm = titan.peak_perf();
    let eff_norm = titan.peak_energy_eff();
    let pow_norm = titan.params().peak_power();

    // One fused sweep per machine over the whole grid — perf, energy-eff,
    // and power in a single memory pass (bit-identical to per-metric
    // `Metric::eval_batch` calls) — then the three panels are assembled
    // from the shared columns.
    struct Columns {
        perf: Vec<f64>,
        eff: Vec<f64>,
        power: Vec<f64>,
    }
    let sweep = |m: &EnergyRoofline| -> Columns {
        let n = grid.len();
        let (mut perf, mut eff, mut power) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        m.plan().efficiency_batch(&grid, &mut perf, &mut eff, &mut power);
        Columns { perf, eff, power }
    };
    let (tc, ac, arrc) = (sweep(&titan), sweep(&arndale), sweep(&array));
    let panel = |col: fn(&Columns) -> &[f64], norm: f64| -> Vec<Fig1Point> {
        grid.iter()
            .enumerate()
            .map(|(k, &i)| Fig1Point {
                intensity: i,
                titan: col(&tc)[k] / norm,
                arndale: col(&ac)[k] / norm,
                array: col(&arrc)[k] / norm,
            })
            .collect()
    };

    let crossover = crossovers(&arndale, &titan, Metric::EnergyEfficiency, 0.125, 512.0, 512)
        .first()
        .map(|x| x.intensity);

    // Measured dots via the simulator.
    let measured_energy_eff = if measured_points > 0 {
        let engine = Engine::default();
        let dots = sample_intensities(0.125, 256.0, measured_points);
        let ts = spec_for(&titan_rec, Precision::Single);
        let asx = spec_for(&arndale_rec, Precision::Single);
        let tplan = MeasurePlan::new(&ts, engine);
        let aplan = MeasurePlan::new(&asx, engine);
        dots.iter()
            .enumerate()
            .map(|(k, &i)| {
                let tw = ts.intensity_workload(i, 0.1);
                let aw = asx.intensity_workload(i, 0.1);
                let tr = tplan.measure(&tw, 0xF1 + k as u64);
                let ar = aplan.measure(&aw, 0xA1 + k as u64);
                (i, tr.flops_per_joule() / eff_norm, ar.flops_per_joule() / eff_norm)
            })
            .collect()
    } else {
        Vec::new()
    };

    Fig1Report {
        array_size: rep.n,
        performance: panel(|c| &c.perf, perf_norm),
        energy_eff: panel(|c| &c.eff, eff_norm),
        power: panel(|c| &c.power, pow_norm),
        energy_crossover: crossover,
        bandwidth_advantage: array.peak_bandwidth() / titan.peak_bandwidth(),
        peak_ratio: array.peak_perf() / titan.peak_perf(),
        measured_energy_eff,
    }
}

/// Renders the three panels as ASCII charts (log-2 y like the paper) over
/// the aligned series tables.
pub fn render_charts(report: &Fig1Report) -> String {
    use crate::plot::{ascii_plot, Series};
    let mut out = String::new();
    for (title, series) in [
        ("Flop / Time (log2, normalized)", &report.performance),
        ("Flop / Energy (log2, normalized)", &report.energy_eff),
    ] {
        let mk = |f: &dyn Fn(&Fig1Point) -> f64, glyph: char, label: &str| {
            Series::new(
                glyph,
                label,
                series.iter().map(|p| (p.intensity, f(p).log2())).collect(),
            )
        };
        let chart = ascii_plot(
            &[
                mk(&|p| p.titan, 'T', "GTX Titan"),
                mk(&|p| p.arndale, 'a', "Arndale GPU"),
                mk(&|p| p.array, '#', "power-matched array"),
            ],
            64,
            14,
        );
        out.push_str(&format!("{title}\n{chart}\n"));
    }
    out
}

/// Renders the three panels as aligned series.
pub fn render(report: &Fig1Report) -> String {
    let mut out = format!(
        "Fig. 1: GTX Titan vs Arndale GPU vs {}x Arndale array (power-matched)\n\
         array bandwidth advantage: {}x   array peak-performance ratio: {}x\n\
         energy-efficiency crossover: I ~= {} flop:Byte\n\n",
        report.array_size,
        sig3(report.bandwidth_advantage),
        sig3(report.peak_ratio),
        report.energy_crossover.map_or("-".to_string(), sig3),
    );
    for (title, series) in [
        ("Flop / Time (normalized to Titan peak)", &report.performance),
        ("Flop / Energy (normalized to Titan peak)", &report.energy_eff),
        ("Power (normalized to Titan peak power)", &report.power),
    ] {
        let mut t = TextTable::new(vec!["I", "Titan", "Arndale", "Array"]);
        for p in series.iter().step_by(4) {
            t.row(vec![
                archline_core::units::format_intensity(p.intensity),
                sig3(p.titan),
                sig3(p.arndale),
                sig3(p.array),
            ]);
        }
        out.push_str(&format!("{title}\n{}\n", t.render()));
    }
    out.push_str(&render_charts(report));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_size_matches_peak_power_budget() {
        let r = compute(0);
        // 287 W / 6.11 W -> 46 or 47 depending on Table I rounding.
        assert!((46..=47).contains(&r.array_size), "{}", r.array_size);
    }

    #[test]
    fn headline_claims_hold() {
        let r = compute(0);
        // "aggregate memory bandwidth up to 1.6× higher".
        assert!((1.5..=1.8).contains(&r.bandwidth_advantage), "{}", r.bandwidth_advantage);
        // "sacrificing peak performance (less than 1/2)".
        assert!(r.peak_ratio < 0.5, "{}", r.peak_ratio);
        // Array beats Titan on perf at bandwidth-bound intensities...
        let low = &r.performance[0];
        assert!(low.array > low.titan);
        // ...but loses at compute-bound intensities.
        let high = r.performance.last().unwrap();
        assert!(high.array < high.titan);
    }

    #[test]
    fn crossover_in_expected_band() {
        let r = compute(0);
        let x = r.energy_crossover.expect("crossover exists");
        assert!((1.0..=4.0).contains(&x), "I = {x}");
    }

    #[test]
    fn measured_dots_track_model() {
        let r = compute(7);
        assert_eq!(r.measured_energy_eff.len(), 7);
        for &(i, titan_meas, arndale_meas) in &r.measured_energy_eff {
            let model = r
                .energy_eff
                .iter()
                .min_by(|a, b| {
                    (a.intensity.ln() - i.ln())
                        .abs()
                        .partial_cmp(&(b.intensity.ln() - i.ln()).abs())
                        .expect("finite")
                })
                .expect("grid non-empty");
            assert!(
                (titan_meas - model.titan).abs() / model.titan < 0.25,
                "Titan at I={i}: {titan_meas} vs {}",
                model.titan
            );
            assert!(
                (arndale_meas - model.arndale).abs() / model.arndale < 0.30,
                "Arndale at I={i}: {arndale_meas} vs {}",
                model.arndale
            );
        }
    }
}
