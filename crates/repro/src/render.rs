//! Plain-text table rendering and CSV export for the reports.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; must match the header width.
    ///
    /// # Panics
    /// Panics on a width mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-padded, left-aligned columns and a rule under the
    /// header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', w - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 significant digits (report-friendly).
pub fn sig3(v: f64) -> String {
    archline_core::units::round_sig(v, 3)
}

/// Formats a ratio as a percentage with no decimals ("83%").
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The value column starts at the same offset in both data rows.
        let off2 = lines[2].find('1').unwrap();
        let off3 = lines[3].find('2').unwrap();
        assert!(off3 >= off2); // padded alignment puts both past the name column
        assert_eq!(lines[3].find("23456").unwrap(), "a-much-longer-name  ".len());
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["plain", "with,comma"]);
        t.row(vec!["with\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(sig3(0.8312), "0.831");
        assert_eq!(pct(0.83), "83%");
    }
}
