//! End-to-end degradation contract of the `repro` binary: `repro all` with
//! one platform corrupted past fitability must still complete, mark the
//! platform DEGRADED in the rendered artifacts, write a partial
//! BENCH_repro.json, and exit with the partial-failure status (3).

use std::path::PathBuf;
use std::process::Command;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archline-degraded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn corrupted_platform_degrades_instead_of_aborting() {
    let dir = fresh_dir("all");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["all", "--fast", "--inject", "Arndale GPU:fail-run:1.0:7"])
        .current_dir(&dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    // Partial failure, not total: most artifacts still rendered.
    assert_eq!(out.status.code(), Some(3), "stderr:\n{stderr}");
    assert!(stdout.contains("Table I"), "table1 still renders");
    assert!(stdout.contains("DEGRADED"), "degraded marker in output:\n{stdout}");
    assert!(stdout.contains("Arndale GPU"), "degraded platform named");
    assert!(stdout.contains("scorecard"), "scorecard still renders");

    // The failure summary names the artifact that needed the dead platform
    // and the platform itself.
    assert!(stderr.contains("failure summary"), "stderr:\n{stderr}");
    assert!(stderr.contains("degraded platforms"), "stderr:\n{stderr}");
    assert!(stderr.contains("ext-arndale"), "stderr:\n{stderr}");

    // Partial BENCH_repro.json is still written.
    assert!(dir.join("BENCH_repro.json").exists(), "partial BENCH_repro.json emitted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_single_artifact_exits_zero() {
    let dir = fresh_dir("clean");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig1", "--fast"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr:\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("GTX Titan"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_inject_spec_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["all", "--fast", "--inject", "No Such Platform:spike:0.5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown platform"));
}
