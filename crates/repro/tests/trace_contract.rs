//! The observability contract of the `repro` binary.
//!
//! Two promises, both load-bearing for reproduction claims:
//!
//! 1. **Tracing never changes results.** `repro all` stdout (the rendered
//!    artifacts) is byte-identical with and without a JSONL trace attached.
//! 2. **The trace is complete and parseable.** Every line of `--trace-out`
//!    parses as JSON; a traced injected run contains the fit convergence
//!    verdicts, the fault audit (with its seed), per-artifact spans that
//!    all close, and a final `metrics` snapshot carrying counters from the
//!    fit, executor, powermon, and repro layers.

use std::path::PathBuf;
use std::process::Command;

use serde_json::Value;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archline-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object().and_then(|m| m.get(key))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match get(v, key) {
        Some(Value::String(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    match get(v, key) {
        Some(Value::Number(serde_json::Number::PosInt(n))) => Some(*n),
        _ => None,
    }
}

#[test]
fn stdout_is_byte_identical_with_tracing_attached() {
    let dir = fresh_dir("ident");
    let trace = dir.join("trace.jsonl");
    let plain = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["all", "--fast"])
        .current_dir(&dir)
        .output()
        .unwrap();
    let traced = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["all", "--fast", "--trace-out", trace.to_str().unwrap()])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(traced.status.code(), Some(0));
    assert_eq!(
        plain.stdout, traced.stdout,
        "artifact output must not depend on whether a trace is attached"
    );
    assert!(trace.exists(), "trace file written");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_injected_run_satisfies_the_event_contract() {
    let dir = fresh_dir("events");
    let trace = dir.join("trace.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "all",
            "--fast",
            "--threads",
            "2",
            "--inject",
            "GTX Titan:spike:0.2:7",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .current_dir(&dir)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    // 20% spikes are survivable through the robust fit: clean exit.
    assert_eq!(out.status.code(), Some(0), "stderr:\n{stderr}");

    let text = std::fs::read_to_string(&trace).unwrap();
    let events: Vec<Value> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("trace line {} unparseable: {e}\n{line}", i + 1))
        })
        .collect();
    assert!(events.len() > 50, "substantive trace, got {} events", events.len());
    let mut events = events;
    // The metrics snapshot is flushed last and takes the final seq, so the
    // canonical (seq-sorted) order keeps it at the end.
    events.sort_by_key(|e| get_u64(e, "seq").unwrap_or(0));

    // seq is the ordering key: every event carries one and no two events
    // share one (file order may interleave across worker threads; sorting
    // on seq is what makes traces diffable).
    let mut seqs: Vec<u64> =
        events.iter().map(|e| get_u64(e, "seq").expect("every event has seq")).collect();
    seqs.sort_unstable();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq values unique");

    let named = |ev: &str, target: &str, name: &str| -> Vec<&Value> {
        events
            .iter()
            .filter(|e| {
                get_str(e, "ev") == Some(ev)
                    && get_str(e, "target") == Some(target)
                    && get_str(e, "name") == Some(name)
            })
            .collect()
    };

    // Fit convergence verdicts: one per model per platform.
    let conv = named("event", "fit", "convergence");
    assert!(conv.len() >= 12, "convergence events, got {}", conv.len());

    // The fault audit, with the seed we injected.
    let audits = named("event", "fault", "injected");
    assert_eq!(audits.len(), 1, "exactly one audit for one --inject");
    let fields = get(audits[0], "fields").expect("audit fields");
    assert_eq!(get_u64(fields, "seed"), Some(7));
    assert_eq!(get_str(fields, "class"), Some("spike"));

    // Per-artifact spans: 15 opens, and every open span closes.
    let artifact_opens = named("span_open", "repro", "artifact");
    assert_eq!(artifact_opens.len(), 15);
    let mut open_ids: Vec<u64> = Vec::new();
    for e in &events {
        let Some(id) = get_u64(e, "id") else { continue };
        match get_str(e, "ev") {
            Some("span_open") => open_ids.push(id),
            Some("span_close") => {
                let pos = open_ids.iter().position(|&o| o == id);
                assert!(pos.is_some(), "span {id} closed but never opened");
                open_ids.remove(pos.unwrap());
            }
            _ => {}
        }
    }
    assert!(open_ids.is_empty(), "spans left open: {open_ids:?}");

    // Final metrics snapshot with counters from every instrumented layer.
    let metrics = events.last().expect("non-empty trace");
    assert_eq!(get_str(metrics, "ev"), Some("metrics"), "trace ends with the snapshot");
    let counters = get(metrics, "data").and_then(|d| get(d, "counters")).expect("counters");
    for key in ["fit.platforms", "machine.runs", "powermon.traces", "par.tasks", "repro.cache.misses", "fault.injections"] {
        let v = get_u64(counters, key);
        assert!(v.is_some_and(|v| v > 0), "counter {key} present and nonzero, got {v:?}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quiet_flag_silences_stderr_but_not_artifacts() {
    let dir = fresh_dir("quiet");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig1", "--fast", "-q"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("GTX Titan"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("[time]"), "progress lines suppressed: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_repro_json_carries_schema_version_and_metrics_under_profile() {
    let dir = fresh_dir("schema");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["all", "--fast", "--profile"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("self_ms"), "profile table printed: {stderr}");

    let bench: Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("BENCH_repro.json")).unwrap())
            .unwrap();
    assert_eq!(get_u64(&bench, "schema_version"), Some(2));
    assert_eq!(get_str(&bench, "status"), Some("ok"));
    let counters = get(&bench, "metrics").and_then(|m| get(m, "counters")).expect("metrics");
    assert!(get_u64(counters, "fit.platforms").is_some_and(|v| v > 0));
    assert!(
        get(&bench, "profile").is_some_and(|p| matches!(p, Value::Array(rows) if !rows.is_empty())),
        "profile rows embedded"
    );

    // Rewriting over an older-schema file warns instead of silently mixing
    // formats.
    std::fs::write(dir.join("BENCH_repro.json"), "{\"total\": 1.0}\n").unwrap();
    let again = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["all", "--fast"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(again.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&again.stderr);
    assert!(stderr.contains("schema_version 1"), "older-schema warning: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
