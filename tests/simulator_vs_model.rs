//! Property-based cross-crate tests: on *random* (not just Table I)
//! noiseless platforms, the simulator's emergent behaviour must coincide
//! with the closed-form model — the central consistency requirement of the
//! reproduction.

use archline::machine::spec::{LevelSpec, NoiseSpec, PipelineSpec, PlatformSpec, Quirk};
use archline::machine::Engine;
use archline::model::{EnergyRoofline, MachineParams, PowerCap, Workload};
use archline::powermon::RailSplit;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random two-level machine in a physically plausible envelope.
fn arb_spec() -> impl Strategy<Value = PlatformSpec> {
    (
        1e9..5e12f64,   // flop rate
        1e-12..5e-10f64, // eps_flop
        1e9..5e11f64,   // dram bandwidth
        1e-11..5e-9f64, // eps_mem
        0.5..200.0f64,  // pi1
        0.1..2.0f64,    // cap as a fraction of peak op power
    )
        .prop_map(|(fr, ef, br, em, pi1, frac)| {
            let peak_ops = fr * ef + br * em;
            PlatformSpec {
                name: "random".to_string(),
                flop: PipelineSpec { rate: fr, energy_per_op: ef },
                levels: vec![LevelSpec {
                    name: "DRAM".into(),
                    rate: br,
                    energy_per_byte: em,
                }],
                random: None,
                const_power: pi1,
                usable_power: (peak_ops * frac).max(1e-3),
                noise: NoiseSpec::NONE,
                quirk: Quirk::None,
                rail_split: RailSplit::single("brick", 12.0),
            }
        })
}

fn model_of(spec: &PlatformSpec) -> EnergyRoofline {
    EnergyRoofline::new(
        MachineParams {
            time_per_flop: 1.0 / spec.flop.rate,
            time_per_byte: 1.0 / spec.levels[0].rate,
            energy_per_flop: spec.flop.energy_per_op,
            energy_per_byte: spec.levels[0].energy_per_byte,
            const_power: spec.const_power,
            cap: PowerCap::Capped(spec.usable_power),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn emergent_time_matches_eq3(spec in arb_spec(), log_i in -3f64..9f64, seed in 0u64..1000) {
        let intensity = 2f64.powf(log_i);
        let w = spec.intensity_workload(intensity, 0.05);
        let mut rng = StdRng::seed_from_u64(seed);
        let ex = Engine::default().run(&spec, &w, &mut rng);
        let flat = Workload::new(w.flops, w.bytes_per_level[0]);
        let predicted = model_of(&spec).time(&flat);
        let rel = (ex.duration - predicted).abs() / predicted;
        prop_assert!(rel < 5e-3, "I={intensity}: sim {} vs eq.(3) {}", ex.duration, predicted);
    }

    #[test]
    fn emergent_power_matches_eq7(spec in arb_spec(), log_i in -3f64..9f64) {
        let intensity = 2f64.powf(log_i);
        let w = spec.intensity_workload(intensity, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let ex = Engine::default().run(&spec, &w, &mut rng);
        let predicted = model_of(&spec).avg_power_at(intensity);
        let measured = ex.true_avg_power();
        let rel = (measured - predicted).abs() / predicted;
        prop_assert!(rel < 5e-3, "I={intensity}: sim {measured} vs eq.(7) {predicted}");
    }

    #[test]
    fn governor_never_exceeds_budget(spec in arb_spec(), log_i in -3f64..9f64) {
        let intensity = 2f64.powf(log_i);
        let w = spec.intensity_workload(intensity, 0.03);
        let mut rng = StdRng::seed_from_u64(2);
        let ex = Engine::default().run(&spec, &w, &mut rng);
        let budget = spec.const_power + spec.usable_power;
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = ex.profile.power_at(ex.duration * frac);
            prop_assert!(p <= budget * (1.0 + 1e-9), "p = {p} > {budget}");
        }
    }

    #[test]
    fn powermon_energy_estimator_tracks_truth(spec in arb_spec(), log_i in -2f64..8f64, seed in 0u64..100) {
        // The paper's estimator (mean sampled power × wall time) agrees
        // with the simulator's exact energy integral within sampling +
        // quantization error.
        let intensity = 2f64.powf(log_i);
        let w = spec.intensity_workload(intensity, 0.1);
        let r = archline::machine::measure(&spec, &w, &Engine::default(), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let ex = Engine::default().run(&spec, &w, &mut rng);
        let rel = (r.energy - ex.true_energy()).abs() / ex.true_energy();
        prop_assert!(rel < 0.02, "measured {} vs truth {}", r.energy, ex.true_energy());
    }
}
