//! Integration suite asserting the paper's quantitative claims, end to end
//! through the public facade crate.

use archline::model::{
    crossovers, power_bounding, power_match, EnergyRoofline, Metric, PowerCap, Workload,
};
use archline::platforms::{all_platforms, platform, PlatformId, Precision};
use archline::stats::pearson;

fn model(id: PlatformId) -> EnergyRoofline {
    EnergyRoofline::new(platform(id).machine_params(Precision::Single).expect("single"))
}

/// Fig. 5 headline: every panel's peak Gflop/J and MB/J annotation follows
/// from the Table I constants through the model.
#[test]
fn fig5_headline_efficiencies() {
    for p in all_platforms() {
        let m = EnergyRoofline::new(p.machine_params(Precision::Single).unwrap());
        let rel_f = (m.peak_energy_eff() - p.headline.peak_flops_per_joule).abs()
            / p.headline.peak_flops_per_joule;
        let rel_b = (m.peak_byte_eff() - p.headline.peak_bytes_per_joule).abs()
            / p.headline.peak_bytes_per_joule;
        assert!(rel_f < 0.06, "{}: flop/J off by {rel_f}", p.name);
        assert!(rel_b < 0.06, "{}: B/J off by {rel_b}", p.name);
    }
}

/// Fig. 5 ordering: GTX Titan tops the energy-efficiency ranking at
/// 16 Gflop/J; Desktop CPU closes it at 620 Mflop/J.
#[test]
fn fig5_panel_order_extremes() {
    let ordered = archline::repro::platforms_by_peak_efficiency();
    assert_eq!(ordered.first().unwrap().name, "GTX Titan");
    assert_eq!(ordered.last().unwrap().name, "Desktop CPU");
    let titan = model(PlatformId::GtxTitan);
    assert!((titan.peak_energy_eff() / 1e9 - 16.4).abs() < 0.3);
    let desktop = model(PlatformId::DesktopCpu);
    assert!((desktop.peak_energy_eff() / 1e9 - 0.62).abs() < 0.02);
}

/// §I demonstration / Fig. 1: the power-matched Arndale array offers up to
/// ~1.6× the Titan's bandwidth below I ≈ 4 at under half its peak.
#[test]
fn fig1_power_matched_array() {
    let titan = platform(PlatformId::GtxTitan).machine_params(Precision::Single).unwrap();
    let arndale = platform(PlatformId::ArndaleGpu).machine_params(Precision::Single).unwrap();
    let rep = power_match(&arndale, titan.const_power + titan.cap.watts());
    assert!((46..=47).contains(&rep.n), "n = {}", rep.n);
    let agg = rep.model();
    let t = EnergyRoofline::new(titan);
    let bw = agg.peak_bandwidth() / t.peak_bandwidth();
    assert!((1.5..1.8).contains(&bw), "bandwidth advantage {bw}");
    assert!(agg.peak_perf() / t.peak_perf() < 0.5);
    // The advantage holds across the bandwidth-bound range...
    for i in [0.125, 0.5, 2.0] {
        assert!(agg.perf_at(i) > t.perf_at(i), "I={i}");
    }
    // ...and reverses when compute-bound.
    assert!(agg.perf_at(64.0) < t.perf_at(64.0));
}

/// §I: the Arndale GPU stays within 2× of the Titan's energy-efficiency
/// even at compute-bound intensities, and ties/leads below I ≈ 1.7.
#[test]
fn fig1_energy_efficiency_relationship() {
    let titan = model(PlatformId::GtxTitan);
    let arndale = model(PlatformId::ArndaleGpu);
    let xs = crossovers(&arndale, &titan, Metric::EnergyEfficiency, 0.125, 512.0, 512);
    assert_eq!(xs.len(), 1);
    assert!(xs[0].a_leads_below);
    assert!((1.0..4.0).contains(&xs[0].intensity), "I = {}", xs[0].intensity);
    // Within a factor of two at peak.
    let ratio = arndale.peak_energy_eff() / titan.peak_energy_eff();
    assert!((0.45..0.6).contains(&ratio), "ratio {ratio}");
    // Near-parity ("match") out to I = 4 on the paper's log scale.
    let at4 = arndale.energy_eff_at(4.0) / titan.energy_eff_at(4.0);
    assert!(at4 > 0.8, "at I=4: {at4}");
}

/// §V-C worked example: streaming energy per byte inverts the ε_mem
/// ordering because of π_1 (Arndale 671 pJ/B < Titan 782 pJ/B < Phi
/// 1.13 nJ/B).
#[test]
fn section_vc_streaming_energy_inversion() {
    let phi = platform(PlatformId::XeonPhi);
    let titan = platform(PlatformId::GtxTitan);
    let arndale = platform(PlatformId::ArndaleGpu);
    // Phi has the lowest marginal ε_mem of all 12 platforms...
    for p in all_platforms() {
        assert!(p.mem.energy >= phi.mem.energy, "{}", p.name);
    }
    let _ = (titan, arndale);
    let e = |id| model(id).streaming_energy_per_byte();
    let e_phi = e(PlatformId::XeonPhi);
    let e_titan = e(PlatformId::GtxTitan);
    let e_arndale = e(PlatformId::ArndaleGpu);
    assert!((e_arndale - 671e-12).abs() < 4e-12, "{e_arndale}");
    assert!((e_titan - 782e-12).abs() < 4e-12, "{e_titan}");
    assert!((e_phi - 1.13e-9).abs() < 0.02e-9, "{e_phi}");
    // ...yet pays the most per byte end-to-end.
    assert!(e_arndale < e_titan && e_titan < e_phi);
}

/// §V-C: constant power exceeds 50 % of maximum power on 7 of 12
/// platforms, and anticorrelates with peak efficiency (≈ −0.6).
#[test]
fn section_vc_constant_power_fraction() {
    let platforms = all_platforms();
    let over_half = platforms
        .iter()
        .filter(|p| {
            p.machine_params(Precision::Single).unwrap().const_power_fraction() > 0.5
        })
        .count();
    assert_eq!(over_half, 7);

    let fractions: Vec<f64> = platforms
        .iter()
        .map(|p| p.machine_params(Precision::Single).unwrap().const_power_fraction())
        .collect();
    let eff_log: Vec<f64> = platforms
        .iter()
        .map(|p| {
            EnergyRoofline::new(p.machine_params(Precision::Single).unwrap())
                .peak_energy_eff()
                .ln()
        })
        .collect();
    let r = pearson(&fractions, &eff_log);
    assert!((-0.75..=-0.45).contains(&r), "correlation {r}");
}

/// §V-D: Titan at Δπ/8 ≈ 140 W runs at ≈0.31× at I = 0.25; 23 Arndale GPUs
/// in the same budget are ≈2.6× faster (paper: "approximately 2.8×").
#[test]
fn section_vd_power_bounding() {
    let titan = platform(PlatformId::GtxTitan).machine_params(Precision::Single).unwrap();
    let arndale = platform(PlatformId::ArndaleGpu).machine_params(Precision::Single).unwrap();
    let budget = titan.const_power + titan.cap.watts() / 8.0;
    assert!((budget - 143.5).abs() < 0.1);
    let out = power_bounding(&titan, &arndale, budget, 0.25);
    assert!((out.big_node_slowdown - 0.312).abs() < 0.01, "{}", out.big_node_slowdown);
    assert_eq!(out.small_nodes, 23);
    assert!((2.4..=2.8).contains(&out.ensemble_speedup), "{}", out.ensemble_speedup);
    // Better than the unbounded best case (1.6×): the paper's "more
    // graceful degradation" conclusion.
    assert!(out.ensemble_speedup > 1.6);
}

/// Conclusions: the Xeon Phi's random-access energy is roughly an order of
/// magnitude below every other platform's.
#[test]
fn conclusions_phi_random_access() {
    let phi = platform(PlatformId::XeonPhi).random.unwrap();
    for p in all_platforms() {
        if p.id == PlatformId::XeonPhi {
            continue;
        }
        if let Some(r) = p.random {
            assert!(
                r.energy_per_access / phi.energy_per_access > 8.9,
                "{}: only {}x",
                p.name,
                r.energy_per_access / phi.energy_per_access
            );
        }
    }
}

/// Table I note 2: exactly the NUC GPU, APU GPU, and Arndale GPU lack
/// double precision, and the model construction respects that.
#[test]
fn double_precision_support_matrix() {
    for p in all_platforms() {
        let expect_missing = matches!(
            p.id,
            PlatformId::NucGpu | PlatformId::ApuGpu | PlatformId::ArndaleGpu
        );
        assert_eq!(p.machine_params(Precision::Double).is_err(), expect_missing, "{}", p.name);
        if !expect_missing {
            // ε_d ≥ ε_s on every platform (double costs at least single).
            let d = p.flop_double.unwrap();
            assert!(d.energy >= p.flop_single.energy, "{}", p.name);
        }
    }
}

/// §V-B sanity: inclusive cache energies are ordered ε_L1 ≤ ε_L2 on every
/// platform that reports both, and ε_rand per line exceeds streaming cost.
#[test]
fn section_vb_hierarchy_invariants() {
    for p in all_platforms() {
        if let (Some(l1), Some(l2)) = (p.l1, p.l2) {
            assert!(l1.energy <= l2.energy, "{}", p.name);
        }
        if let Some(r) = p.random {
            // Reading a line at random costs far more than a streamed byte.
            assert!(
                r.energy_per_access > p.mem.energy * 8.0,
                "{}: ε_rand {} vs ε_mem {}",
                p.name,
                r.energy_per_access,
                p.mem.energy
            );
        }
    }
}

/// The capped model's time is never optimistic relative to the uncapped
/// model, and the gap appears exactly where Δπ < π_flop + π_mem.
#[test]
fn capped_vs_uncapped_time_structure() {
    for p in all_platforms() {
        let params = p.machine_params(Precision::Single).unwrap();
        let capped = EnergyRoofline::new(params);
        let free = EnergyRoofline::new(params.uncapped());
        let b = params.balances();
        let w_bal = Workload::from_intensity(1e10, b.time);
        if params.flop_power() + params.mem_power() > params.cap.watts() {
            assert!(
                capped.time(&w_bal) > free.time(&w_bal) * 1.0001,
                "{}: cap should bind at balance",
                p.name
            );
        }
        // Far from balance on the memory side the two agree (when the cap
        // can sustain streaming).
        if params.cap.watts() > params.mem_power() {
            let w_low = Workload::from_intensity(1e10, (b.lower * 0.25).max(1e-3));
            let rel = (capped.time(&w_low) - free.time(&w_low)).abs() / free.time(&w_low);
            assert!(rel < 1e-9, "{}", p.name);
        }
    }
}

/// Cross-check: Table I's fitted Δπ for the NUC GPU cannot sustain its
/// published sustained flop rate — the capped model's achievable peak is
/// Δπ/ε_s ≈ 233 Gflop/s (documented deviation; see EXPERIMENTS.md).
#[test]
fn nuc_gpu_cap_inconsistency_is_real() {
    let p = platform(PlatformId::NucGpu);
    let params = p.machine_params(Precision::Single).unwrap();
    let m = EnergyRoofline::new(params);
    assert!(m.peak_perf() < p.flop_single.rate * 0.9);
    assert!((m.peak_perf() - p.usable_power / p.flop_single.energy).abs() < 1.0);
}

/// The uncapped special case reproduces the prior (IPDPS 2013) model:
/// T = max(Wτ_f, Qτ_m) and peak power π_1 + π_flop + π_mem at B_τ.
#[test]
fn uncapped_reduces_to_prior_model() {
    let params = platform(PlatformId::Gtx680).machine_params(Precision::Single).unwrap();
    let free = EnergyRoofline::new(MachineParamsExt::uncap(params));
    let b = params.time_balance();
    let peak = free.avg_power_at(b);
    let expected = params.const_power + params.flop_power() + params.mem_power();
    assert!((peak - expected).abs() < 1e-6);
}

/// Small helper so the test reads naturally.
struct MachineParamsExt;
impl MachineParamsExt {
    fn uncap(mut p: archline::model::MachineParams) -> archline::model::MachineParams {
        p.cap = PowerCap::Uncapped;
        p
    }
}
