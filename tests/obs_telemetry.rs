//! Telemetry-plane contracts in archline-obs (ISSUE 10):
//!
//! * [`HistogramSnapshot::quantile`] documents an error bound — exact for
//!   true quantiles `t ≤ 1`, strict `t/2 < e < 2·t` otherwise. The
//!   property tests here pin that bound against the *exact* nearest-rank
//!   quantile of sorted samples (the doc on `quantile` points at this
//!   file).
//! * [`FlightRecorder`] promises torn-write-free dumps under concurrent
//!   writers: a dump is strictly `seq`-increasing JSONL even while writer
//!   threads race the ring and one of them dies mid-flight.
//!
//! [`HistogramSnapshot::quantile`]: archline_obs::HistogramSnapshot::quantile
//! [`FlightRecorder`]: archline_obs::FlightRecorder

use std::sync::Arc;

use archline_obs::{self as obs, FlightRecorder, Histogram};
use proptest::prelude::*;

/// Samples spread over many magnitudes (bit lengths 0..=40), so every
/// power-of-two bucket shape gets exercised — including the exact
/// single-value buckets for 0 and 1.
fn arb_samples() -> BoxedStrategy<Vec<u64>> {
    proptest::collection::vec(
        (0u32..=40).prop_flat_map(|bits| 0u64..=(1u64 << bits)),
        1..120,
    )
}

/// Exact nearest-rank `q`-quantile of `samples` (the reference the
/// histogram estimate is judged against).
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let rank = if q <= 0.0 { 1 } else { ((q * n as f64).ceil() as u64).clamp(1, n) };
    sorted[(rank - 1) as usize]
}

/// A fresh histogram per case: `record` wants `&'static self` (it
/// self-registers), so each case leaks one — a few hundred bytes per case
/// in a test process.
fn fresh_histogram(samples: &[u64]) -> &'static Histogram {
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new("obs.telemetry.prop")));
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The documented error bound holds for every (samples, q) pair:
    /// exact when the true nearest-rank sample is 0 or 1, strictly within
    /// (t/2, 2t) otherwise.
    #[test]
    fn quantile_respects_documented_error_bound(
        samples in arb_samples(),
        q in 0f64..=1.0,
    ) {
        let h = fresh_histogram(&samples);
        let t = exact_quantile(&samples, q);
        let e = h.quantile(q);
        if t <= 1 {
            prop_assert_eq!(e, t, "t <= 1 must be exact (q={q}, samples={samples:?})");
        } else {
            prop_assert!(
                (e as f64) > t as f64 / 2.0 && (e as f64) < 2.0 * t as f64,
                "bound violated: t={t}, e={e}, q={q}, samples={samples:?}"
            );
        }
    }

    /// The estimator never leaves the sample envelope and is monotone in
    /// `q` — a p99 can never undercut a p50 from the same snapshot.
    #[test]
    fn quantile_is_monotone_and_bounded(
        samples in arb_samples(),
        q1 in 0f64..=1.0,
        q2 in 0f64..=1.0,
    ) {
        let h = fresh_histogram(&samples);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let (e_lo, e_hi) = (h.quantile(lo), h.quantile(hi));
        prop_assert!(e_lo <= e_hi, "quantile not monotone: q{lo}->{e_lo} > q{hi}->{e_hi}");
        let max = samples.iter().copied().max().unwrap_or(0);
        prop_assert!(e_hi <= max, "estimate {e_hi} above recorded max {max}");
    }
}

/// Extracts `"seq":N` from one rendered JSONL line without a full parser —
/// seq is always the first key the encoder writes.
fn seq_of(line: &str) -> u64 {
    let rest = line.strip_prefix("{\"seq\":").unwrap_or_else(|| {
        panic!("line does not start with a seq field (torn write?): {line}")
    });
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().unwrap_or_else(|_| panic!("bad seq in line: {line}"))
}

#[test]
fn flight_dump_is_torn_free_under_concurrent_writers_and_a_panic() {
    const WRITERS: usize = 8;
    const EVENTS_PER_WRITER: u64 = 400;

    let recorder = Arc::new(FlightRecorder::new(64));
    let sink = obs::install_sink(Arc::clone(&recorder) as Arc<dyn obs::Sink>);

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_WRITER {
                    obs::debug!("flight_test", "writer {w} tick {i}");
                }
            })
        })
        .collect();
    // One task dies mid-flight: the ring must stay consistent when a
    // writer's thread unwinds right after recording.
    let panicker = std::thread::spawn(|| {
        obs::warn!("flight_test", "incident imminent");
        panic!("deliberate test panic");
    });

    for w in writers {
        w.join().expect("writer thread");
    }
    assert!(panicker.join().is_err(), "panicker must actually panic");
    obs::remove_sink(sink);

    // Every offered event either landed in a slot or was counted dropped;
    // nothing vanishes silently. (>= because unrelated obs activity in
    // this process may also have reached the installed sink.)
    let offered = WRITERS as u64 * EVENTS_PER_WRITER + 1;
    assert!(
        recorder.recorded() >= offered,
        "cursor saw {} events, expected at least {offered}",
        recorder.recorded()
    );

    let mut out = String::new();
    let dumped = recorder.dump_jsonl("concurrency_test", &mut out);
    assert!(dumped > 0, "ring cannot be empty after {offered} events");
    assert!(dumped <= recorder.capacity(), "ring cannot exceed capacity");

    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), dumped + 1, "ring events + one summary line");

    let mut prev_seq = None;
    for line in &lines {
        // A torn record would fail to parse as a complete JSON object.
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("torn/unparseable dump line: {e}: {line}"));
        let obj = v.as_object().expect("dump line is an object");
        for key in ["seq", "ev", "level", "target"] {
            assert!(obj.contains_key(key), "dump line missing `{key}`: {line}");
        }
        let seq = seq_of(line);
        if let Some(p) = prev_seq {
            assert!(seq > p, "seq not strictly increasing: {p} then {seq}");
        }
        prev_seq = Some(seq);
    }

    let summary = lines.last().expect("summary line");
    assert!(summary.contains("\"name\":\"flight_dump\""), "{summary}");
    assert!(summary.contains("\"reason\":\"concurrency_test\""), "{summary}");
}
