//! Chaos soak: drive every fault class through a live archline-serve
//! engine and assert the degradation contract holds.
//!
//! For each of the 10 [`FaultClass`]es, a fresh server runs with that
//! class injected (severity 1.0, seeded) on one *sabotaged* platform
//! while a *healthy* platform on a different shard keeps answering. The
//! contract under test:
//!
//! * **No panic escapes** — every query gets an answer, and a genuinely
//!   poisoned query (panicking kernel) degrades to a typed error while
//!   the worker keeps serving.
//! * **Every rejection is typed** — nothing but the documented `Reject`
//!   kinds comes back.
//! * **Audits appear exactly once** — one `fault/injected` trace event
//!   per injection application, all at site `serve`, naming the class.
//! * **Healthy shards answer bit-identically** — byte-for-byte equal to
//!   a direct `RooflinePlan` evaluation, even while the sabotaged
//!   shard's breaker is open.
//!
//! Corrupting classes must trip the sabotaged shard's breaker
//! (consecutive verification failures with retries disabled); the three
//! classes that are no-ops on run-shaped data (out-of-order, jitter,
//! rail-dropout) must leave answers intact and the breaker closed while
//! still being audited.
//!
//! Seeded via `ARCHLINE_CHAOS_SEED` (default 42) so CI can soak a seed
//! matrix; every assertion is seed-independent (severity 1.0 corrupts
//! regardless of the RNG draw).
//!
//! Every server here runs with `ServeConfig::default()` layered under the
//! chaos knobs — which since ISSUE 9 means *adaptive admission windows
//! are on*: the whole fault matrix (injection audits, breaker sequences,
//! bit-identity on healthy shards, drain-on-shutdown) holds with batching
//! windows enabled. The queries are sequential, so the exact breaker
//! sequences below are window-independent by construction.

use archline_core::RooflinePlan;
use archline_faults::{FaultClass, FaultPlan, FaultSpec};
use archline_platforms::{all_platforms, Precision};
use archline_serve::{
    BreakerState, Query, QueryResult, Reject, Request, ServeConfig, ServeHandle, Server,
    SweepMetric,
};
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("ARCHLINE_CHAOS_SEED").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(42)
}

fn eval_req(id: u64, platform: &str) -> Request {
    Request {
        id,
        platform: platform.to_string(),
        double_precision: false,
        cap: None,
        deadline_ms: None,
        trace: None,
        query: Query::Eval {
            flops: (1..=8).map(|i| 3e9 * i as f64).collect(),
            bytes: (1..=8).map(|i| 5e8 / i as f64).collect(),
        },
    }
}

/// Picks a sabotaged platform and a healthy platform that hash to
/// different shards (so sabotage and health are physically separate
/// workers).
fn pick_platforms(handle: &ServeHandle) -> (String, String) {
    let names: Vec<String> = all_platforms()
        .iter()
        .filter(|p| p.machine_params(Precision::Single).is_ok())
        .map(|p| p.name.clone())
        .collect();
    let shard = |name: &str| handle.shard_of(&eval_req(0, name)).expect("resolvable");
    let sab = names.first().expect("catalog non-empty").clone();
    let healthy = names
        .iter()
        .find(|n| shard(n) != shard(&sab))
        .expect("two platforms on distinct shards")
        .clone();
    (sab, healthy)
}

/// Reference answer straight off the plan kernels, bypassing the server.
fn reference_eval(platform: &str, req: &Request) -> (Vec<u64>, Vec<u64>, Vec<u64>, Vec<char>) {
    let params = all_platforms()
        .into_iter()
        .find(|p| p.name == platform)
        .expect("platform")
        .machine_params(Precision::Single)
        .expect("single-precision model");
    let plan = RooflinePlan::new(params);
    let Query::Eval { flops, bytes } = &req.query else { panic!("eval request") };
    let mut t = Vec::new();
    let mut e = Vec::new();
    let mut p = Vec::new();
    let mut r = Vec::new();
    for (&w, &q) in flops.iter().zip(bytes) {
        let (ti, ei, pi, ri) = plan.evaluate(w, q);
        t.push(ti.to_bits());
        e.push(ei.to_bits());
        p.push(pi.to_bits());
        r.push(ri.letter());
    }
    (t, e, p, r)
}

fn assert_bit_identical(resp_result: &Result<QueryResult, Reject>, platform: &str, req: &Request) {
    let QueryResult::Eval { time, energy, power, regime } =
        resp_result.as_ref().unwrap_or_else(|e| panic!("healthy query rejected: {e}"))
    else {
        panic!("eval result expected");
    };
    let (rt, re, rp, rr) = reference_eval(platform, req);
    assert_eq!(time.iter().map(|x| x.to_bits()).collect::<Vec<_>>(), rt);
    assert_eq!(energy.iter().map(|x| x.to_bits()).collect::<Vec<_>>(), re);
    assert_eq!(power.iter().map(|x| x.to_bits()).collect::<Vec<_>>(), rp);
    assert_eq!(regime, &rr);
}

/// Classes that corrupt run-shaped results (and so must trip the breaker
/// under severity-1.0 injection with retries disabled). The other three
/// are documented no-ops on runs.
fn corrupts_runs(class: FaultClass) -> bool {
    !matches!(class, FaultClass::OutOfOrder | FaultClass::Jitter | FaultClass::RailDropout)
}

#[test]
fn chaos_soak_every_fault_class_degrades_gracefully() {
    let seed = chaos_seed();
    for class in FaultClass::ALL {
        let (_, events) = archline_obs::test_support::capture(|| soak_one_class(class, seed));

        // Audit contract: every injection audit carries site "serve" and
        // the class under test; the count matches evaluated queries
        // exactly (admission-level rejections never reach injection).
        let audits: Vec<_> =
            events.iter().filter(|e| e.target == "fault" && e.name == "injected").collect();
        let expected = if corrupts_runs(class) { 3 } else { 6 };
        assert_eq!(
            audits.len(),
            expected,
            "{class}: one audit per injection application (got {})",
            audits.len()
        );
        for a in &audits {
            assert_eq!(a.get_str("site"), Some("serve"), "{class}: audit site");
            assert_eq!(a.get_str("class"), Some(class.name()), "{class}: audit class");
        }
    }
}

fn soak_one_class(class: FaultClass, seed: u64) {
    let spec = FaultSpec::new(class, 1.0, seed);
    let sabotaged_probe = Server::start(ServeConfig::default()).expect("probe server");
    let (sab, healthy) = pick_platforms(&sabotaged_probe.handle());
    sabotaged_probe.shutdown();

    let server = Server::start(ServeConfig {
        inject: vec![(sab.clone(), FaultPlan::new(vec![spec]))],
        retry_attempts: 0,
        breaker_trip: 3,
        breaker_cooldown: Duration::from_secs(3600),
        seed,
        ..ServeConfig::default()
    })
    .expect("chaos server");
    let handle = server.handle();
    let sab_shard = handle.shard_of(&eval_req(0, &sab)).unwrap();

    // Phase 1: six sequential queries at the sabotaged platform.
    let mut kinds = Vec::new();
    for id in 1..=6u64 {
        let resp = handle.query(eval_req(id, &sab));
        assert_eq!(resp.id, id);
        match &resp.result {
            Ok(r) => {
                // Only the no-op classes may answer — and then the answer
                // must be exactly the uncorrupted one.
                assert!(!corrupts_runs(class), "{class}: corrupted answer returned: {r:?}");
                assert_bit_identical(&resp.result, &sab, &eval_req(id, &sab));
                kinds.push("ok");
            }
            Err(reject) => kinds.push(reject.kind()),
        }
    }
    if corrupts_runs(class) {
        // Three verification failures trip the breaker; the rest reject
        // at admission without evaluating.
        assert_eq!(
            kinds,
            ["internal", "internal", "internal", "breaker_open", "breaker_open", "breaker_open"],
            "{class}"
        );
        assert_eq!(handle.breaker_state(sab_shard), BreakerState::Open, "{class}");
    } else {
        assert_eq!(kinds, ["ok"; 6], "{class}: no-op injection must not degrade answers");
        assert_eq!(handle.breaker_state(sab_shard), BreakerState::Closed, "{class}");
    }

    // Phase 2: the healthy platform (different shard) answers
    // bit-identically while its neighbor is (possibly) breaker-open.
    for id in 10..14u64 {
        let req = eval_req(id, &healthy);
        let resp = handle.query(req.clone());
        assert_bit_identical(&resp.result, &healthy, &req);
    }

    // Phase 3: a genuinely poisoned query (panicking kernel) on the
    // healthy shard degrades to a typed internal error — and the worker
    // survives to answer the next query.
    let poisoned = Request {
        id: 99,
        platform: healthy.clone(),
        double_precision: false,
        cap: None,
        deadline_ms: None,
        trace: None,
        query: Query::Sweep { metric: SweepMetric::Perf, lo: -1.0, hi: 10.0, points: 8 },
    };
    match handle.query(poisoned).result {
        Err(Reject::Internal(msg)) => assert!(msg.contains("panic"), "{class}: {msg}"),
        other => panic!("{class}: poisoned query must reject typed, got {other:?}"),
    }
    let req = eval_req(100, &healthy);
    assert_bit_identical(&handle.query(req.clone()).result, &healthy, &req);

    // Phase 4: drain-on-shutdown answers everything already admitted.
    let late = handle.submit(eval_req(200, &healthy));
    let after = server.shutdown();
    assert!(late.wait().result.is_ok(), "{class}: admitted work survives shutdown");
    assert_eq!(
        after.handle_query_after_shutdown_kind(),
        "shutting_down",
        "{class}: post-drain admission is typed"
    );
}

/// Tiny extension trait so the soak reads declaratively above.
trait AfterShutdown {
    fn handle_query_after_shutdown_kind(&self) -> &'static str;
}

impl AfterShutdown for ServeHandle {
    fn handle_query_after_shutdown_kind(&self) -> &'static str {
        match self.query(eval_req(201, "GTX Titan")).result {
            Err(reject) => reject.kind(),
            Ok(_) => "ok",
        }
    }
}
