//! Integration tests for the beyond-the-paper extensions: the
//! utilization-scaled capping model against the quirky simulator, network-
//! aware replication, DVFS, and the app-level workload models.

use archline::fit::fit_platform;
use archline::machine::{spec_for, Engine};
use archline::microbench::{run_suite, SweepConfig};
use archline::model::apps::{DenseMatMul, Element, Fft, SpMv};
use archline::model::extended::fit_depth;
use archline::model::{
    power_match, power_match_with, DvfsModel, EnergyRoofline, Interconnect,
    UtilizationScaledModel, Workload,
};
use archline::platforms::{platform, PlatformId, Precision};

fn small_cfg() -> SweepConfig {
    SweepConfig { points: 25, target_secs: 0.06, level_runs: 1, random_runs: 1, ..Default::default() }
}

/// The utilization-scaled model recovers the simulator's quirk depth from
/// measurements and explains the Arndale GPU's mid-intensity dip that the
/// clean model (with Table I constants) cannot.
#[test]
fn utilization_model_explains_the_arndale_dip() {
    let rec = platform(PlatformId::ArndaleGpu);
    let spec = spec_for(&rec, Precision::Single);
    let suite = run_suite(&spec, &small_cfg(), &Engine::default());
    let table1 = rec.machine_params(Precision::Single).unwrap();

    let obs: Vec<(Workload, f64)> = suite
        .dram
        .runs
        .iter()
        .map(|r| (Workload::new(r.flops, r.bytes), r.avg_power()))
        .collect();
    let gamma = fit_depth(&table1, &obs);
    assert!((gamma - 0.13).abs() < 0.05, "γ = {gamma} (simulator truth 0.13)");

    let clean = EnergyRoofline::new(table1);
    let scaled = UtilizationScaledModel::new(table1, gamma);
    let rmse = |f: &dyn Fn(&Workload) -> f64| -> f64 {
        let s: f64 = obs
            .iter()
            .map(|(w, m)| {
                let e = (f(w) - m) / m;
                e * e
            })
            .sum();
        (s / obs.len() as f64).sqrt()
    };
    let clean_rmse = rmse(&|w| clean.avg_power(w));
    let scaled_rmse = rmse(&|w| scaled.avg_power(w));
    assert!(
        scaled_rmse < 0.5 * clean_rmse,
        "scaled {scaled_rmse} vs clean {clean_rmse}"
    );
}

/// On a clean platform, the fitted depth is ≈0 and the scaled model
/// coincides with the clean one — the refinement does not overfit.
#[test]
fn utilization_model_is_inert_on_clean_platforms() {
    let rec = platform(PlatformId::Gtx680);
    let spec = spec_for(&rec, Precision::Single);
    let suite = run_suite(&spec, &small_cfg(), &Engine::default());
    let fit = fit_platform(&suite.dram);
    let obs: Vec<(Workload, f64)> = suite
        .dram
        .runs
        .iter()
        .map(|r| (Workload::new(r.flops, r.bytes), r.avg_power()))
        .collect();
    let gamma = fit_depth(&fit.capped, &obs);
    assert!(gamma < 0.03, "γ = {gamma} should be ≈ 0 on a quirk-free platform");
}

/// Network-aware power matching is consistent with the ideal case and
/// strictly pessimistic.
#[test]
fn network_replication_is_strictly_pessimistic() {
    let titan = platform(PlatformId::GtxTitan).machine_params(Precision::Single).unwrap();
    let arndale = platform(PlatformId::ArndaleGpu).machine_params(Precision::Single).unwrap();
    let budget = titan.const_power + titan.cap.watts();
    let ideal = power_match(&arndale, budget);
    let ideal_net = power_match_with(&arndale, &Interconnect::IDEAL, budget);
    assert_eq!(ideal.n, ideal_net.n);
    for watts in [0.5, 1.0, 2.0, 4.0] {
        let net = Interconnect { per_node_watts: watts, bandwidth_efficiency: 0.9 };
        let rep = power_match_with(&arndale, &net, budget);
        assert!(rep.n <= ideal.n);
        let agg = EnergyRoofline::new(rep.aggregate_with(&net));
        let ideal_agg = EnergyRoofline::new(ideal.aggregate());
        assert!(agg.peak_bandwidth() < ideal_agg.peak_bandwidth());
        // Total power still respects the budget.
        let total = rep.aggregate_with(&net).peak_power();
        assert!(
            total <= budget * 1.001,
            "net {watts} W: total {total} vs budget {budget}"
        );
    }
}

/// DVFS interacts sanely with the cap: at any frequency, the capped model's
/// predictions remain physical, and the optimal frequency for memory-bound
/// work is below that for compute-bound work on every platform that can
/// exploit it.
#[test]
fn dvfs_optima_are_ordered_by_intensity() {
    for id in [PlatformId::GtxTitan, PlatformId::NucCpu, PlatformId::XeonPhi] {
        let rec = platform(id);
        let dvfs = DvfsModel::conventional(rec.machine_params(Precision::Single).unwrap());
        let low = dvfs.energy_optimal_frequency(0.125, 0.25, 1.5, 41).0;
        let high = dvfs.energy_optimal_frequency(256.0, 0.25, 1.5, 41).0;
        assert!(low <= high + 1e-9, "{}: {low} vs {high}", rec.name);
        // Physicality at off-nominal points.
        for f in [0.25, 0.75, 1.5] {
            let m = dvfs.model_at(f);
            let w = Workload::from_intensity(1e9, 4.0);
            assert!(m.time(&w) > 0.0 && m.energy(&w) > 0.0);
            assert!(m.avg_power(&w) >= dvfs.base.const_power);
        }
    }
}

/// Fig. 1's array claim, validated end-to-end with *measured* systems: an
/// actually-simulated 46-node Arndale ensemble beats an actually-simulated
/// GTX Titan by ≈1.6× on a bandwidth-bound workload, and loses on a
/// compute-bound one — with both sides going through the engine + PowerMon
/// measurement chain rather than the closed-form model.
#[test]
fn measured_ensemble_reproduces_fig1_crossover() {
    use archline::machine::{measure_ensemble, EnsembleSpec};
    use archline::model::HierWorkload;

    let titan_spec = spec_for(&platform(PlatformId::GtxTitan), Precision::Single);
    let node = spec_for(&platform(PlatformId::ArndaleGpu), Precision::Single);
    let ensemble = EnsembleSpec { node, n: 46, interconnect: Interconnect::IDEAL };
    let engine = Engine::default();

    let run_both = |intensity: f64| -> (f64, f64) {
        // Size the job for the Titan (~0.15 s) and hand the identical total
        // workload to the ensemble.
        let w = titan_spec.intensity_workload(intensity, 0.15);
        let titan_time = archline::machine::measure(&titan_spec, &w, &engine, 3).duration;
        // Map the Titan's 3-level workload onto the ensemble's DRAM level.
        let total = HierWorkload::single_level(
            w.flops,
            ensemble.node.dram_level(),
            w.bytes_per_level[titan_spec.dram_level()],
        );
        let ens = measure_ensemble(&ensemble, &total, &engine, 9);
        (titan_time, ens.duration)
    };

    let (titan_t, ens_t) = run_both(0.25);
    let speedup = titan_t / ens_t;
    assert!((1.4..1.9).contains(&speedup), "bandwidth-bound speedup {speedup}");

    let (titan_t, ens_t) = run_both(128.0);
    let slowdown = titan_t / ens_t;
    assert!(slowdown < 0.5, "compute-bound: ensemble should lose, got {slowdown}");
}

/// App-level models produce the intensities the paper quotes, and the
/// resulting platform rankings are consistent with Fig. 1's story: mobile
/// blocks win energy at SpMV-like intensity, big GPUs win FFT time.
#[test]
fn app_models_reproduce_paper_intensity_bands_and_rankings() {
    let spmv = SpMv { rows: 1 << 22, nnz: 50 << 22, element: Element::F32 };
    assert!((0.2..0.5).contains(&spmv.intensity()), "{}", spmv.intensity());
    let fft = Fft { n: 1 << 27, element: Element::F32, fast_bytes: (1 << 20) as f64 };
    assert!((1.5..6.0).contains(&fft.intensity()), "{}", fft.intensity());
    let gemm = DenseMatMul { n: 8192, element: Element::F32, fast_bytes: (1 << 20) as f64 };
    assert!(gemm.intensity() > 30.0, "{}", gemm.intensity());

    let model = |id: PlatformId| {
        EnergyRoofline::new(platform(id).machine_params(Precision::Single).unwrap())
    };
    let titan = model(PlatformId::GtxTitan);
    let arndale = model(PlatformId::ArndaleGpu);
    // SpMV: Arndale GPU more energy-efficient than the Titan (Fig. 1).
    let w = spmv.workload();
    assert!(arndale.energy(&w) / w.flops < titan.energy(&w) / w.flops);
    // GEMM (compute-bound): Titan wins both time and energy.
    let w = gemm.workload();
    assert!(titan.time(&w) < arndale.time(&w));
    assert!(titan.energy(&w) < arndale.energy(&w));
}
