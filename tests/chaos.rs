//! Chaos property suite: seeded fault injection over the measure → sanitize
//! → fit pipeline.
//!
//! Three property families, all deterministic for a given seed:
//!
//! 1. **Sanitize recovers the signal.** For every fault class that
//!    preserves the underlying power signal (drops, duplicates,
//!    reordering, jitter, skew, quantization), `PowerTrace::sanitize` over
//!    the corrupted stream yields a valid trace whose average power is
//!    within a documented tolerance of the clean trace's.
//! 2. **The robust fit survives documented severities.** For every run-level
//!    fault class there is a documented severity up to which
//!    `try_fit_platform` with the robust policy still recovers the ground
//!    truth within tolerance — and a severity (total `fail-run`) past which
//!    it returns a typed error rather than garbage.
//! 3. **Determinism.** The same `FaultSpec` seed corrupts identically
//!    (bit-for-bit), so every fitted constant is reproducible.
//!
//! The base seed comes from `ARCHLINE_CHAOS_SEED` (default 42); CI runs a
//! small seed matrix, so tolerances here must hold for any seed.

use archline::faults::{FaultClass, FaultPlan};
use archline::fit::{try_fit_platform, FitError, FitOptions, MeasurementSet, Run};
use archline::model::{EnergyRoofline, MachineParams, PowerCap, Workload};
use archline::powermon::{PowerTrace, Sample};

/// Base seed for every injector in this suite, from `ARCHLINE_CHAOS_SEED`.
fn base_seed() -> u64 {
    std::env::var("ARCHLINE_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Per-class seed: distinct streams per class, all derived from the base.
fn seed_for(class: FaultClass) -> u64 {
    base_seed().wrapping_add(class as u64)
}

// ---------------------------------------------------------------------------
// Family 1: trace-level — inject, sanitize, recover the average power.
// ---------------------------------------------------------------------------

/// 2 s of a 1 kHz meter watching a sinusoidal load around 30 W.
fn clean_samples() -> Vec<Sample> {
    (0..2000)
        .map(|i| {
            let t = i as f64 * 1e-3;
            Sample { time: t, watts: 30.0 + 5.0 * (2.0 * std::f64::consts::PI * t).sin() }
        })
        .collect()
}

#[test]
fn sanitize_recovers_average_power_under_signal_preserving_faults() {
    let clean = PowerTrace::new(clean_samples());
    let clean_avg = clean.avg_power();
    // (class, severity, relative tolerance on the recovered average).
    let cases = [
        (FaultClass::Drop, 0.3, 0.02),
        (FaultClass::Duplicate, 0.3, 0.02),
        (FaultClass::OutOfOrder, 0.5, 1e-12),
        (FaultClass::Jitter, 0.2, 0.02),
        (FaultClass::ClockSkew, 0.1, 1e-9),
        (FaultClass::Quantize, 0.05, 0.05),
        (FaultClass::FailRun, 0.3, 0.02), // NaN samples: dropped by sanitize
    ];
    for (class, severity, tol) in cases {
        let plan = FaultPlan::single(class, severity, seed_for(class));
        let dirty = plan.apply_to_samples(clean_samples());
        let (trace, report) = PowerTrace::sanitize(dirty);
        assert!(!trace.is_empty(), "{class:?}: sanitize kept nothing");
        let rel = (trace.avg_power() - clean_avg).abs() / clean_avg;
        assert!(
            rel < tol,
            "{class:?} at {severity}: avg power {} vs clean {clean_avg} (rel {rel:.4}, tol {tol}); {report:?}",
            trace.avg_power(),
        );
    }
}

#[test]
fn sanitize_always_yields_a_valid_trace() {
    // Every class, including the signal-destroying ones: whatever the
    // injector emits, sanitize's output must satisfy the trace invariants.
    for class in FaultClass::ALL {
        let plan = FaultPlan::single(class, 0.3, seed_for(class));
        let dirty = plan.apply_to_samples(clean_samples());
        let (trace, _) = PowerTrace::sanitize(dirty);
        assert!(
            PowerTrace::try_new(trace.samples().to_vec()).is_ok(),
            "{class:?}: sanitized trace violates invariants"
        );
    }
}

#[test]
fn clock_skew_stretches_energy_by_the_skew_factor() {
    let clean = PowerTrace::new(clean_samples());
    let plan = FaultPlan::single(FaultClass::ClockSkew, 0.1, seed_for(FaultClass::ClockSkew));
    let (skewed, _) = PowerTrace::sanitize(plan.apply_to_samples(clean_samples()));
    let ratio = skewed.energy_trapezoid() / clean.energy_trapezoid();
    assert!((ratio - 1.1).abs() < 1e-9, "energy ratio {ratio}");
}

// ---------------------------------------------------------------------------
// Family 2: fit-level — the robust policy vs corrupted run sets.
// ---------------------------------------------------------------------------

fn truth() -> MachineParams {
    MachineParams::builder()
        .flops_per_sec(100e9)
        .bytes_per_sec(20e9)
        .energy_per_flop(50e-12)
        .energy_per_byte(400e-12)
        .const_power(10.0)
        .cap(PowerCap::Capped(9.0))
        .build()
        .unwrap()
}

/// Noiseless measurements of `truth()` on a 40-point log-spaced intensity
/// grid (the same construction the fit pipeline's own tests use).
fn clean_runs() -> Vec<Run> {
    let t = truth();
    let model = EnergyRoofline::new(t);
    (0..40)
        .map(|k| {
            let i = 2f64.powf(k as f64 * 12.0 / 39.0 - 3.0);
            let w = Workload::from_intensity(1e10_f64.max(t.flops_per_sec() * 0.3), i);
            Run {
                flops: w.flops,
                bytes: w.bytes,
                accesses: 0.0,
                time: model.time(&w),
                energy: model.energy(&w),
            }
        })
        .collect()
}

#[test]
fn robust_fit_survives_every_class_at_its_documented_severity() {
    // The documented severity ceiling per run-level fault class, and the
    // relative tolerance on the recovered constants. Classes that are
    // sample-stream-only (out-of-order, jitter, rail-dropout) pass through
    // run sets unchanged and are checked at full severity.
    let cases = [
        (FaultClass::Drop, 0.5, 0.25),
        (FaultClass::Duplicate, 0.5, 0.25),
        (FaultClass::OutOfOrder, 1.0, 1e-12),
        (FaultClass::ClockSkew, 0.05, 0.12), // constants legitimately scale by ~1+s
        (FaultClass::Jitter, 1.0, 1e-12),
        (FaultClass::Spike, 0.2, 0.25),
        (FaultClass::Quantize, 0.01, 0.25),
        (FaultClass::CounterWrap, 0.5, 0.25),
        (FaultClass::RailDropout, 1.0, 1e-12),
        (FaultClass::FailRun, 0.5, 0.25),
    ];
    let t = truth();
    let rel = |a: f64, b: f64| (a - b).abs() / b;
    for (class, severity, tol) in cases {
        let plan = FaultPlan::single(class, severity, seed_for(class));
        let dirty = MeasurementSet::from_raw(plan.apply_to_runs(clean_runs()));
        let report = try_fit_platform(&dirty, &FitOptions::robust())
            .unwrap_or_else(|e| panic!("{class:?} at {severity}: fit failed: {e}"));
        assert!(
            rel(report.capped.const_power, t.const_power) < tol,
            "{class:?} at {severity}: π1 {} vs {} (tol {tol})",
            report.capped.const_power,
            t.const_power,
        );
        assert!(
            rel(report.capped.energy_per_byte, t.energy_per_byte) < tol,
            "{class:?} at {severity}: ε_mem {} vs {} (tol {tol})",
            report.capped.energy_per_byte,
            t.energy_per_byte,
        );
    }
}

#[test]
fn total_corruption_is_a_typed_error_not_garbage() {
    let plan = FaultPlan::single(FaultClass::FailRun, 1.0, base_seed());
    let dirty = MeasurementSet::from_raw(plan.apply_to_runs(clean_runs()));
    match try_fit_platform(&dirty, &FitOptions::robust()) {
        Err(FitError::TooFewRuns { got }) => assert!(got < 4, "got {got}"),
        other => panic!("expected TooFewRuns, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Family 3: determinism — same seed, same bits.
// ---------------------------------------------------------------------------

#[test]
fn injection_and_fit_are_deterministic_per_seed() {
    let plan = FaultPlan::single(FaultClass::Spike, 0.2, base_seed());
    let a = plan.apply_to_runs(clean_runs());
    let b = plan.apply_to_runs(clean_runs());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.time.to_bits(), rb.time.to_bits());
        assert_eq!(ra.energy.to_bits(), rb.energy.to_bits());
    }
    let fa = try_fit_platform(&MeasurementSet::from_raw(a), &FitOptions::robust()).unwrap();
    let fb = try_fit_platform(&MeasurementSet::from_raw(b), &FitOptions::robust()).unwrap();
    assert_eq!(fa.capped.const_power.to_bits(), fb.capped.const_power.to_bits());
    assert_eq!(fa.capped.energy_per_byte.to_bits(), fb.capped.energy_per_byte.to_bits());
    assert_eq!(fa.capped.cap.watts().to_bits(), fb.capped.cap.watts().to_bits());
}

#[test]
fn different_seeds_corrupt_differently() {
    let s = base_seed();
    let a = FaultPlan::single(FaultClass::Drop, 0.4, s).apply_to_runs(clean_runs());
    let b = FaultPlan::single(FaultClass::Drop, 0.4, s ^ 0x9E37_79B9).apply_to_runs(clean_runs());
    let identical = a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x == y);
    assert!(!identical, "two seeds produced identical drop patterns");
}

// ---------------------------------------------------------------------------
// Family 4: auditability — every injection appears in the trace, once.
// ---------------------------------------------------------------------------

#[test]
fn every_injected_fault_is_audited_exactly_once_with_its_seed() {
    use archline::obs::{test_support::capture, EventKind};

    // One application per (class, representation), each with a unique seed
    // so audits are attributable to the spec that produced them.
    let ((), events) = capture(|| {
        for (i, class) in FaultClass::ALL.into_iter().enumerate() {
            let plan = FaultPlan::single(class, 0.2, 1000 + i as u64);
            let _ = plan.apply_to_samples(clean_samples());
            let _ = plan.apply_to_runs(clean_runs());
        }
    });
    let audits: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Point && e.target == "fault" && e.name == "injected")
        .collect();
    assert_eq!(
        audits.len(),
        FaultClass::ALL.len() * 2,
        "one audit per (spec, representation), no more, no less"
    );
    for (i, class) in FaultClass::ALL.into_iter().enumerate() {
        let seed = 1000 + i as u64;
        let mine: Vec<_> =
            audits.iter().filter(|e| e.get_u64("seed") == Some(seed)).collect();
        assert_eq!(mine.len(), 2, "{class}: samples + runs audits for seed {seed}");
        let mut sites: Vec<&str> = mine.iter().filter_map(|e| e.get_str("site")).collect();
        sites.sort_unstable();
        assert_eq!(sites, ["runs", "samples"], "{class}");
        for e in &mine {
            assert_eq!(e.get_str("class"), Some(class.name()), "audit names its class");
        }
    }
}

#[test]
fn audited_corruption_is_bit_identical_to_unobserved_corruption() {
    use archline::obs::test_support::capture;

    // The audit counts affected sites without drawing from the spec's RNG;
    // attaching an observer must not change a single bit of the output.
    let plan = FaultPlan::single(FaultClass::Spike, 0.3, base_seed());
    let unobserved = plan.apply_to_runs(clean_runs());
    let (observed, _) = capture(|| plan.apply_to_runs(clean_runs()));
    assert_eq!(unobserved.len(), observed.len());
    for (a, b) in unobserved.iter().zip(&observed) {
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
    }
}
