//! Batching-invariance property suite: adaptive admission windows,
//! per-worker plan caching, and cross-request SoA packing must be
//! *invisible* in the answers.
//!
//! The contract under test, per ISSUE 9:
//!
//! * **Bit-identity vs `max_batch = 1`** — the same workload served by a
//!   strict one-request-per-batch engine (windows off) and by a wide
//!   windowed engine (batches coalesced across requests and packed into
//!   shared SoA columns) produces byte-for-byte identical answers, for
//!   every query kind: point evals, all three sweep metrics (both packed
//!   small grids and oversized inline grids), crossovers, and what-if cap
//!   overrides that multiply the distinct-plan count.
//! * **Deadlines survive window boundaries** — a hold is budgeted
//!   against the nearest queued deadline (never past half its remaining
//!   slack), so a window wider than a request's deadline delays the
//!   answer but does not expire it.
//! * **Many-plans group-by** — a batch where every request carries a
//!   distinct plan key (the O(n²) group-by regression shape) still
//!   answers every request correctly and bit-identically to direct plan
//!   evaluation.
//! * **Plan-cache persistence** — plans survive across batches (hits
//!   accumulate), and a deliberately tiny cache evicts without ever
//!   changing an answer.
//! * **Telemetry invariance** (ISSUE 10) — serving with the telemetry
//!   plane on vs off changes only the response envelope (trace ids,
//!   `phases_us`), never a result bit.

use archline_core::power::sample_intensities;
use archline_core::RooflinePlan;
use archline_platforms::{all_platforms, Precision};
use archline_serve::{
    BatchWindow, CapOverride, Query, QueryResult, Reject, Request, ServeConfig, Server,
    SweepMetric,
};

/// Sweeps past this many points bypass the packed column (mirrors the
/// server's `PACKED_SWEEP_MAX_POINTS`); one workload sweep sits above it
/// so the inline path is exercised too.
const OVERSIZED_SWEEP_POINTS: usize = 5_000;

fn req(id: u64, platform: &str, query: Query) -> Request {
    Request {
        id,
        platform: platform.to_string(),
        double_precision: false,
        cap: None,
        deadline_ms: None,
        trace: None,
        query,
    }
}

fn eval_query(n: usize, scale: f64) -> Query {
    Query::Eval {
        flops: (1..=n).map(|i| scale * 1e9 * i as f64).collect(),
        bytes: (1..=n).map(|i| 2e8 * i as f64).collect(),
    }
}

/// A mixed workload touching every query kind, several platforms, both
/// packed and oversized sweeps, and throttle overrides (distinct plans).
fn workload() -> Vec<Request> {
    let platforms = ["GTX Titan", "Desktop CPU", "NUC CPU", "GTX 680"];
    let mut reqs = Vec::new();
    let mut id = 0u64;
    let mut next_id = || {
        id += 1;
        id
    };
    for (pi, platform) in platforms.iter().enumerate() {
        for n in [1usize, 3, 16, 64] {
            reqs.push(req(next_id(), platform, eval_query(n, 1.0 + pi as f64)));
        }
        for metric in [SweepMetric::Power, SweepMetric::Perf, SweepMetric::EnergyEff] {
            reqs.push(req(next_id(), platform, Query::Sweep {
                metric,
                lo: 0.01,
                hi: 1e4,
                points: 33,
            }));
        }
        // Oversized sweep: bypasses the packed column, evaluates inline.
        reqs.push(req(next_id(), platform, Query::Sweep {
            metric: SweepMetric::Perf,
            lo: 0.1,
            hi: 100.0,
            points: OVERSIZED_SWEEP_POINTS,
        }));
        reqs.push(req(next_id(), platform, Query::Crossover {
            other: platforms[(pi + 1) % platforms.len()].to_string(),
            metric: SweepMetric::EnergyEff,
            lo: 0.01,
            hi: 1e4,
            grid: 128,
        }));
        // What-if throttle: a distinct plan key on the same platform.
        let mut throttled = req(next_id(), platform, eval_query(8, 1.0));
        throttled.cap = Some(CapOverride::Throttle(2.0 + pi as f64));
        reqs.push(throttled);
    }
    reqs
}

/// Serves the whole workload concurrently (submit everything, then wait)
/// so wide engines actually coalesce, and returns answers sorted by id.
fn serve_all(config: ServeConfig, reqs: &[Request]) -> Vec<(u64, Result<QueryResult, Reject>)> {
    let server = Server::start(config).expect("server");
    let handle = server.handle();
    let tickets: Vec<_> = reqs.iter().map(|r| (r.id, handle.submit(r.clone()))).collect();
    let mut out: Vec<_> = tickets.into_iter().map(|(id, t)| (id, t.wait().result)).collect();
    server.shutdown();
    out.sort_by_key(|(id, _)| *id);
    out
}

/// Bit-level equality: f64s compare by `to_bits`, so `-0.0` vs `0.0` or
/// NaN payloads would fail where `==` could lie.
fn assert_bits_equal(id: u64, a: &Result<QueryResult, Reject>, b: &Result<QueryResult, Reject>) {
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    match (a, b) {
        (
            Ok(QueryResult::Eval { time: t0, energy: e0, power: p0, regime: r0 }),
            Ok(QueryResult::Eval { time: t1, energy: e1, power: p1, regime: r1 }),
        ) => {
            assert_eq!(bits(t0), bits(t1), "id {id}: eval time bits");
            assert_eq!(bits(e0), bits(e1), "id {id}: eval energy bits");
            assert_eq!(bits(p0), bits(p1), "id {id}: eval power bits");
            assert_eq!(r0, r1, "id {id}: eval regimes");
        }
        (
            Ok(QueryResult::Sweep { intensity: x0, value: v0 }),
            Ok(QueryResult::Sweep { intensity: x1, value: v1 }),
        ) => {
            assert_eq!(bits(x0), bits(x1), "id {id}: sweep grid bits");
            assert_eq!(bits(v0), bits(v1), "id {id}: sweep value bits");
        }
        (
            Ok(QueryResult::Crossover { crossings: c0 }),
            Ok(QueryResult::Crossover { crossings: c1 }),
        ) => {
            assert_eq!(c0.len(), c1.len(), "id {id}: crossing count");
            for ((x0, l0), (x1, l1)) in c0.iter().zip(c1) {
                assert_eq!(x0.to_bits(), x1.to_bits(), "id {id}: crossing intensity bits");
                assert_eq!(l0, l1, "id {id}: crossing lead side");
            }
        }
        (other_a, other_b) => {
            panic!("id {id}: result kinds diverge or rejected:\n  a: {other_a:?}\n  b: {other_b:?}")
        }
    }
}

/// One shard + `max_batch = 1` + windows off: the strictest possible
/// serving mode — every request is its own kernel pass.
fn unbatched_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        max_batch: 1,
        batch_window: BatchWindow::Off,
        ..ServeConfig::default()
    }
}

#[test]
fn windowed_packed_serving_is_bit_identical_to_unbatched() {
    let reqs = workload();
    let reference = serve_all(unbatched_config(), &reqs);

    // A wide fixed window forces coalescing; one shard forces every plan
    // group through the same worker and packed columns.
    let wide = ServeConfig {
        shards: 1,
        max_batch: 64,
        batch_window: BatchWindow::FixedUs(20_000),
        ..ServeConfig::default()
    };
    let batched = serve_all(wide, &reqs);
    assert_eq!(reference.len(), batched.len());
    for ((id_a, a), (id_b, b)) in reference.iter().zip(&batched) {
        assert_eq!(id_a, id_b);
        assert_bits_equal(*id_a, a, b);
    }

    // The adaptive default must be just as invisible.
    let adaptive = ServeConfig { shards: 1, ..ServeConfig::default() };
    assert!(matches!(adaptive.batch_window, BatchWindow::Adaptive));
    let adaptive_answers = serve_all(adaptive, &reqs);
    for ((id_a, a), (id_b, b)) in reference.iter().zip(&adaptive_answers) {
        assert_eq!(id_a, id_b);
        assert_bits_equal(*id_a, a, b);
    }
}

#[test]
fn telemetry_on_and_off_answer_bit_identically() {
    // The telemetry plane rides the response *envelope* (trace ids,
    // phases_us); the result payloads must be byte-for-byte identical
    // with it on (the default) and off — observation must not perturb
    // the observable.
    let reqs = workload();
    let on = serve_all(
        ServeConfig { shards: 1, telemetry: true, ..ServeConfig::default() },
        &reqs,
    );
    let off = serve_all(
        ServeConfig { shards: 1, telemetry: false, ..ServeConfig::default() },
        &reqs,
    );
    assert_eq!(on.len(), off.len());
    for ((id_a, a), (id_b, b)) in on.iter().zip(&off) {
        assert_eq!(id_a, id_b);
        assert_bits_equal(*id_a, a, b);
    }

    // And the envelope itself honors the toggle: telemetry-on responses
    // carry a minted trace + phase breakdown, telemetry-off responses
    // carry neither (no client trace was supplied).
    let probe = |telemetry: bool| {
        let server = Server::start(ServeConfig {
            shards: 1,
            telemetry,
            ..ServeConfig::default()
        })
        .expect("server");
        let resp = server.handle().query(req(1, "GTX Titan", eval_query(4, 1.0)));
        server.shutdown();
        resp
    };
    let with = probe(true);
    assert!(with.result.is_ok(), "{:?}", with.result);
    assert!(with.trace.is_some(), "telemetry on mints a trace");
    let phases = with.phases.expect("telemetry on attaches phases");
    assert_eq!(
        phases.total_us,
        phases.queue_us + phases.window_us + phases.kernel_us,
        "phase decomposition must sum exactly to the total"
    );
    let without = probe(false);
    assert!(without.result.is_ok(), "{:?}", without.result);
    assert!(without.trace.is_none(), "telemetry off mints nothing");
    assert!(without.phases.is_none(), "telemetry off stamps nothing");
}

#[test]
fn windowed_serving_actually_coalesces() {
    // Not just invisible — the window must buy real occupancy under
    // concurrent submission, or the tentpole is a no-op.
    let reqs: Vec<Request> =
        (0..128).map(|i| req(i + 1, "GTX Titan", eval_query(16, 1.0))).collect();
    let server = Server::start(ServeConfig {
        shards: 1,
        max_batch: 64,
        batch_window: BatchWindow::FixedUs(20_000),
        ..ServeConfig::default()
    })
    .expect("server");
    let handle = server.handle();
    let tickets: Vec<_> = reqs.iter().map(|r| handle.submit(r.clone())).collect();
    for t in tickets {
        assert!(t.wait().result.is_ok());
    }
    let after = server.shutdown();
    let stats = after.stats();
    assert!(
        stats.mean_batch_occupancy() > 1.5,
        "a 20ms window over 128 concurrent submissions must coalesce \
         (got occupancy {:.2} over {} batches)",
        stats.mean_batch_occupancy(),
        stats.batches.load(std::sync::atomic::Ordering::Relaxed)
    );
}

#[test]
fn deadlines_are_honored_at_window_boundaries() {
    // A 50ms window against a 40ms deadline: the hold is budgeted to half
    // the remaining slack, so the answer arrives inside the deadline
    // instead of expiring behind the window.
    let server = Server::start(ServeConfig {
        shards: 1,
        batch_window: BatchWindow::FixedUs(50_000),
        ..ServeConfig::default()
    })
    .expect("server");
    let handle = server.handle();
    let mut tight = req(1, "GTX Titan", eval_query(4, 1.0));
    tight.deadline_ms = Some(40);
    let resp = handle.query(tight);
    assert!(
        resp.result.is_ok(),
        "a 50ms window must not expire a 40ms-deadline request: {:?}",
        resp.result
    );
    // An already-expired deadline still rejects typed — the window does
    // not resurrect it.
    let mut expired = req(2, "GTX Titan", eval_query(4, 1.0));
    expired.deadline_ms = Some(0);
    assert_eq!(handle.query(expired).result, Err(Reject::DeadlineExceeded));
    server.shutdown();
}

#[test]
fn many_distinct_plans_in_one_batch_answer_correctly() {
    // The O(n²) group-by regression shape: every request in the batch
    // carries its own plan key (distinct throttle factors), all on one
    // shard. Answers must match direct plan evaluation bit-for-bit.
    let n = 100u64;
    let params = all_platforms()
        .into_iter()
        .find(|p| p.name == "GTX Titan")
        .expect("platform")
        .machine_params(Precision::Single)
        .expect("single");
    let reqs: Vec<Request> = (0..n)
        .map(|i| {
            let mut r = req(i + 1, "GTX Titan", eval_query(4, 1.0));
            r.cap = Some(CapOverride::Throttle(1.0 + i as f64 * 0.25));
            r
        })
        .collect();
    let server = Server::start(ServeConfig {
        shards: 1,
        max_batch: 256,
        batch_window: BatchWindow::FixedUs(20_000),
        // Far fewer slots than plans: the intern table must evict its way
        // through the batch without changing any answer.
        plan_cache_cap: 8,
        ..ServeConfig::default()
    })
    .expect("server");
    let handle = server.handle();
    let tickets: Vec<_> = reqs.iter().map(|r| handle.submit(r.clone())).collect();
    let answers: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let after = server.shutdown();
    for (i, resp) in answers.iter().enumerate() {
        let plan = RooflinePlan::new(params.throttled(1.0 + i as f64 * 0.25));
        let Ok(QueryResult::Eval { time, energy, power, .. }) = &resp.result else {
            panic!("request {i} rejected: {:?}", resp.result);
        };
        let Query::Eval { flops, bytes } = &reqs[i].query else { unreachable!() };
        for (k, (&w, &q)) in flops.iter().zip(bytes).enumerate() {
            let (t, e, p, _) = plan.evaluate(w, q);
            assert_eq!(t.to_bits(), time[k].to_bits(), "request {i} point {k}: time");
            assert_eq!(e.to_bits(), energy[k].to_bits(), "request {i} point {k}: energy");
            assert_eq!(p.to_bits(), power[k].to_bits(), "request {i} point {k}: power");
        }
    }
    let stats = after.stats();
    let misses = stats.plan_cache_misses.load(std::sync::atomic::Ordering::Relaxed);
    let evictions = stats.plan_cache_evictions.load(std::sync::atomic::Ordering::Relaxed);
    assert!(misses >= n, "each distinct plan compiles at least once (misses {misses})");
    assert!(evictions > 0, "an 8-slot cache over {n} plans must evict (evictions {evictions})");
}

#[test]
fn plan_cache_persists_across_batches() {
    let server =
        Server::start(ServeConfig { shards: 1, ..ServeConfig::default() }).expect("server");
    let handle = server.handle();
    // Sequential queries: each lands in its own batch, so cache hits can
    // only come from the *persistent* per-worker table — the per-batch
    // map the cache replaced would score zero here.
    for i in 0..10u64 {
        assert!(handle.query(req(i + 1, "Desktop CPU", eval_query(4, 1.0))).result.is_ok());
    }
    let after = server.shutdown();
    let stats = after.stats();
    let hits = stats.plan_cache_hits.load(std::sync::atomic::Ordering::Relaxed);
    let misses = stats.plan_cache_misses.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(misses, 1, "one plan, one compile");
    assert_eq!(hits, 9, "every later batch reuses the interned plan");
    assert!(stats.plan_cache_hit_rate() > 0.85);
    server_window_sanity(&after);
}

/// Post-run sanity on the observability surface the satellites wire up.
fn server_window_sanity(after: &archline_serve::ServeHandle) {
    for shard in 0..after.num_shards() {
        // The gauge is readable and bounded by the adaptive ceiling.
        assert!(after.shard_window_us(shard) <= 1024 * 1024);
    }
}

#[test]
fn packed_sweeps_match_direct_kernel_evaluation() {
    // Beyond server-vs-server identity: packed sweep answers must equal
    // the *direct* kernel over the request's own grid (the packing is a
    // concatenation, never a re-gridding).
    let params = all_platforms()
        .into_iter()
        .find(|p| p.name == "NUC CPU")
        .expect("platform")
        .machine_params(Precision::Single)
        .expect("single");
    let plan = RooflinePlan::new(params);
    let reqs: Vec<Request> = (0..12u64)
        .map(|i| {
            let metric = match i % 3 {
                0 => SweepMetric::Power,
                1 => SweepMetric::Perf,
                _ => SweepMetric::EnergyEff,
            };
            req(i + 1, "NUC CPU", Query::Sweep {
                metric,
                lo: 0.01 * (1.0 + i as f64),
                hi: 1e3,
                points: 17 + i as usize,
            })
        })
        .collect();
    let answers = serve_all(
        ServeConfig {
            shards: 1,
            batch_window: BatchWindow::FixedUs(20_000),
            ..ServeConfig::default()
        },
        &reqs,
    );
    for ((_, result), r) in answers.iter().zip(&reqs) {
        let Query::Sweep { metric, lo, hi, points } = &r.query else { unreachable!() };
        let xs = sample_intensities(*lo, *hi, *points);
        let mut want = vec![0.0; xs.len()];
        match metric {
            SweepMetric::Power => plan.avg_power_batch(&xs, &mut want),
            SweepMetric::Perf => plan.perf_batch(&xs, &mut want),
            SweepMetric::EnergyEff => plan.energy_eff_batch(&xs, &mut want),
        }
        let Ok(QueryResult::Sweep { intensity, value }) = result else {
            panic!("sweep {} rejected: {result:?}", r.id);
        };
        for k in 0..xs.len() {
            assert_eq!(xs[k].to_bits(), intensity[k].to_bits(), "sweep {} grid[{k}]", r.id);
            assert_eq!(want[k].to_bits(), value[k].to_bits(), "sweep {} value[{k}]", r.id);
        }
    }
}
