//! Smoke + serialization tests over every reproduction artifact: each
//! report computes on a small configuration, serializes to JSON, and
//! round-trips — the contract the `repro --csv` output relies on.

use archline::microbench::SweepConfig;
use archline::repro::{ext, fig1, fig4, fig5, fig6, fig7, scorecard, section_vc, section_vd, table1};

fn tiny() -> SweepConfig {
    SweepConfig { points: 17, target_secs: 0.04, level_runs: 1, random_runs: 1, ..Default::default() }
}

#[test]
fn table1_serializes_and_round_trips() {
    let r = table1::compute(&tiny(), false);
    let json = serde_json::to_string(&r).unwrap();
    let back: table1::Table1Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
    assert!(table1::render(&r).contains("Table I"));
}

#[test]
fn fig1_serializes_and_round_trips() {
    let r = fig1::compute(0);
    let json = serde_json::to_string(&r).unwrap();
    let back: fig1::Fig1Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
    let text = fig1::render(&r);
    assert!(text.contains("GTX Titan"));
    assert!(text.contains("┤"), "chart rendering present");
}

#[test]
fn fig4_serializes_and_round_trips() {
    let r = fig4::compute(&tiny());
    let json = serde_json::to_string(&r).unwrap();
    let back: fig4::Fig4Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
    assert!(fig4::render(&r).contains("K-S"));
}

#[test]
fn fig5_serializes_and_round_trips() {
    let r = fig5::compute(&tiny());
    let json = serde_json::to_string(&r).unwrap();
    let back: fig5::Fig5Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
    assert!(fig5::render(&r).contains("normalized"));
}

#[test]
fn fig6_and_fig7_serialize_and_round_trip() {
    let r6 = fig6::compute();
    let back6: fig6::Fig6Report =
        serde_json::from_str(&serde_json::to_string(&r6).unwrap()).unwrap();
    assert_eq!(back6, r6);
    for kind in [fig7::Fig7Kind::Performance, fig7::Fig7Kind::EnergyEfficiency] {
        let r7 = fig7::compute(kind);
        let back7: fig7::Fig7Report =
            serde_json::from_str(&serde_json::to_string(&r7).unwrap()).unwrap();
        assert_eq!(back7, r7);
    }
}

#[test]
fn section_reports_serialize() {
    let vc = section_vc::compute();
    let back: section_vc::SectionVcReport =
        serde_json::from_str(&serde_json::to_string(&vc).unwrap()).unwrap();
    assert_eq!(back, vc);
    let vd = section_vd::compute();
    let back: section_vd::SectionVdReport =
        serde_json::from_str(&serde_json::to_string(&vd).unwrap()).unwrap();
    assert_eq!(back, vd);
}

#[test]
fn extension_reports_serialize() {
    let net = ext::network_erosion().unwrap();
    let back: ext::NetworkErosion =
        serde_json::from_str(&serde_json::to_string(&net).unwrap()).unwrap();
    assert_eq!(back, net);
    let dvfs = ext::dvfs_whatif().unwrap();
    let back: ext::DvfsReport =
        serde_json::from_str(&serde_json::to_string(&dvfs).unwrap()).unwrap();
    assert_eq!(back, dvfs);
    let bounding = ext::bounding_matrix().unwrap();
    let back: ext::BoundingMatrix =
        serde_json::from_str(&serde_json::to_string(&bounding).unwrap()).unwrap();
    assert_eq!(back, bounding);
}

#[test]
fn scorecard_serializes_and_all_pass() {
    // The Fig. 4 claim needs enough intensity points for K-S power; use
    // the standard fast configuration rather than the tiny smoke config.
    let card = scorecard::compute(&archline::repro::analysis::fast_config());
    let back: scorecard::Scorecard =
        serde_json::from_str(&serde_json::to_string(&card).unwrap()).unwrap();
    assert_eq!(back, card);
    assert_eq!(card.passed(), card.total());
}

#[test]
fn reports_are_deterministic_across_computations() {
    // Two computations with the same config must serialize identically —
    // the property that makes EXPERIMENTS.md's recorded numbers stable.
    let a = serde_json::to_string(&fig4::compute(&tiny())).unwrap();
    let b = serde_json::to_string(&fig4::compute(&tiny())).unwrap();
    assert_eq!(a, b);
}
