//! Cross-crate integration: simulate → measure → fit round trips through
//! the full stack (machine + powermon + microbench + fit), for real Table I
//! platforms.

use archline::fit::{fit_level_cost, fit_platform, fit_random_cost, relative_errors, ErrorKind};
use archline::machine::{measure, spec_for, Engine};
use archline::microbench::{run_suite, SweepConfig};
use archline::model::{EnergyRoofline, Workload};
use archline::platforms::{platform, PlatformId, Precision};
use archline::stats::ks_two_sample;

fn cfg() -> SweepConfig {
    SweepConfig { points: 33, target_secs: 0.08, level_runs: 2, random_runs: 2, ..Default::default() }
}

/// The full pipeline recovers the GTX Titan's constants through noise,
/// rail splitting, ADC quantization, and the cap governor.
#[test]
fn titan_full_roundtrip() {
    let rec = platform(PlatformId::GtxTitan);
    let spec = spec_for(&rec, Precision::Single);
    let suite = run_suite(&spec, &cfg(), &Engine::default());
    let fit = fit_platform(&suite.dram);
    let rel = |a: f64, b: f64| (a - b).abs() / b;
    assert!(rel(fit.observed_flops, 4.02e12) < 0.05, "{}", fit.observed_flops);
    assert!(rel(fit.observed_bw, 239e9) < 0.05, "{}", fit.observed_bw);
    assert!(rel(fit.capped.const_power, 123.0) < 0.12, "{}", fit.capped.const_power);
    let max_power = fit.capped.const_power + fit.capped.cap.watts();
    assert!(rel(max_power, 287.0) < 0.06, "{max_power}");
    assert!(rel(fit.capped.energy_per_flop, 30.4e-12) < 0.20, "{}", fit.capped.energy_per_flop);
    assert!(rel(fit.capped.energy_per_byte, 267e-12) < 0.20, "{}", fit.capped.energy_per_byte);
    // Cache levels and random access.
    let (l1_bw, l1_eps) = fit_level_cost(&suite.levels[0].1.runs, fit.capped.const_power);
    assert!(rel(l1_bw, 1610e9) < 0.05, "{l1_bw}");
    assert!(rel(l1_eps, 24.4e-12) < 0.35, "{l1_eps}");
    let (r_rate, r_eps) =
        fit_random_cost(&suite.random.as_ref().unwrap().runs, fit.capped.const_power);
    assert!(rel(r_rate, 968e6) < 0.05, "{r_rate}");
    assert!(rel(r_eps, 48e-9) < 0.30, "{r_eps}");
}

/// The mobile board round trip (single-rail wall measurement, small
/// powers): the Arndale CPU's plateau pins π_1 + Δπ.
#[test]
fn arndale_cpu_roundtrip() {
    let rec = platform(PlatformId::ArndaleCpu);
    let spec = spec_for(&rec, Precision::Single);
    let suite = run_suite(&spec, &cfg(), &Engine::default());
    let fit = fit_platform(&suite.dram);
    let max_power = fit.capped.const_power + fit.capped.cap.watts();
    assert!((max_power - 7.51).abs() / 7.51 < 0.06, "{max_power}");
    // Capped fit strictly better than uncapped on this cap-heavy platform.
    assert!(fit.capped_diag.power_rmse < 0.5 * fit.uncapped_diag.power_rmse);
}

/// Double-precision round trip where supported.
#[test]
fn xeon_phi_double_roundtrip() {
    let rec = platform(PlatformId::XeonPhi);
    let spec = spec_for(&rec, Precision::Double);
    let suite = run_suite(&spec, &cfg(), &Engine::default());
    let fit = fit_platform(&suite.dram);
    assert!((fit.observed_flops - 1010e9).abs() / 1010e9 < 0.05);
    assert!((fit.capped.energy_per_flop - 12.4e-12).abs() / 12.4e-12 < 0.25);
}

/// K-S separation appears for a platform with a wide cap region (GTX 680)
/// and not for one with a sliver (Xeon Phi) — the structural core of
/// Fig. 4.
#[test]
fn ks_separation_tracks_cap_region_width() {
    let engine = Engine::default();
    let mut results = Vec::new();
    for id in [PlatformId::Gtx680, PlatformId::XeonPhi] {
        let rec = platform(id);
        let spec = spec_for(&rec, Precision::Single);
        let suite = run_suite(&spec, &cfg(), &engine);
        let fit = fit_platform(&suite.dram);
        let capped = relative_errors(&fit.capped, &suite.dram.runs, ErrorKind::Power);
        let uncapped = relative_errors(&fit.uncapped, &suite.dram.runs, ErrorKind::Power);
        results.push((rec.name.clone(), ks_two_sample(&capped, &uncapped)));
    }
    let (gtx, phi) = (&results[0], &results[1]);
    assert!(gtx.1.significant_at(0.05), "GTX 680 p = {}", gtx.1.p_value);
    assert!(!phi.1.significant_at(0.05), "Xeon Phi p = {}", phi.1.p_value);
}

/// A single measured run agrees with the model prediction within noise on
/// a clean platform — across all three regimes.
#[test]
fn single_runs_match_model_across_regimes() {
    let rec = platform(PlatformId::Gtx580);
    let spec = spec_for(&rec, Precision::Single);
    let model = EnergyRoofline::new(rec.machine_params(Precision::Single).unwrap());
    let engine = Engine::default();
    for (k, &i) in [0.25, 2.0, 8.19, 64.0, 512.0].iter().enumerate() {
        let w = spec.intensity_workload(i, 0.1);
        let r = measure(&spec, &w, &engine, 100 + k as u64);
        let flat = Workload::new(w.flops, w.bytes_per_level[spec.dram_level()]);
        let t_rel = (r.duration - model.time(&flat)).abs() / model.time(&flat);
        let p_rel = (r.avg_power - model.avg_power(&flat)).abs() / model.avg_power(&flat);
        // GTX 580 carries the noisiest calibration (σ_power = 9 %).
        assert!(t_rel < 0.10, "I={i}: time off {t_rel}");
        assert!(p_rel < 0.30, "I={i}: power off {p_rel}");
    }
}

/// Determinism: the same configuration reproduces bit-identical suites, so
/// every figure regeneration is reproducible.
#[test]
fn suites_are_deterministic() {
    let rec = platform(PlatformId::PandaBoardEs);
    let spec = spec_for(&rec, Precision::Single);
    let small = SweepConfig { points: 9, target_secs: 0.03, ..cfg() };
    let a = run_suite(&spec, &small, &Engine::default());
    let b = run_suite(&spec, &small, &Engine::default());
    assert_eq!(a, b);
    let mut other = small;
    other.base_seed ^= 1;
    let c = run_suite(&spec, &other, &Engine::default());
    assert_ne!(a, c);
}
