//! Telemetry-plane wire contract (ISSUE 10): a live NDJSON/TCP server
//! must round-trip client trace ids, expose `uptime_s` and per-shard
//! queue depths on the stats op, and answer `{"op":"metrics"}` with a
//! Prometheus text exposition whose per-phase histogram `_count` equals
//! the queries actually served.
//!
//! One sequential `#[test]` drives all three assertions against one
//! server: the phase histograms are process-global obs instruments, so
//! splitting into parallel tests would race the `_count` bookkeeping.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use archline_serve::tcp::serve_tcp;
use archline_serve::{ServeConfig, Server};
use serde_json::Value;

/// Minimal Prometheus text-exposition parser: `name{labels} value` and
/// `name value` lines into a flat map keyed by the full series name
/// (label block included, verbatim). `# TYPE`/`# HELP` comments are
/// validated for shape and skipped.
fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
    let mut series = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            let kind = words.next().unwrap_or("");
            assert!(
                kind == "TYPE" || kind == "HELP",
                "unknown exposition comment: {line}"
            );
            if kind == "TYPE" {
                let ty = words.nth(1).unwrap_or("");
                assert!(
                    ["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty),
                    "bad TYPE line: {line}"
                );
            }
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad series: {line}"));
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
        assert!(
            name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "bad series name: {line}"
        );
        series.insert(name.trim().to_string(), value);
    }
    series
}

/// Cumulative-bucket sanity for one histogram: buckets never decrease and
/// the `+Inf` bucket equals `_count`.
fn assert_histogram_shape(series: &BTreeMap<String, f64>, name: &str) {
    let mut buckets: Vec<(&str, f64)> = series
        .iter()
        .filter(|(k, _)| k.starts_with(&format!("{name}_bucket{{")))
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    // Buckets sort by numeric le (the exposition emits them in order, but
    // the map resorted lexicographically); re-derive the numeric order.
    buckets.sort_by(|a, b| {
        let le = |s: &str| -> f64 {
            let inner = s.rsplit_once("le=\"").map(|(_, t)| t).unwrap_or("");
            let inner = inner.trim_end_matches("\"}");
            if inner == "+Inf" { f64::INFINITY } else { inner.parse().unwrap_or(f64::NAN) }
        };
        le(a.0).partial_cmp(&le(b.0)).unwrap_or(std::cmp::Ordering::Equal)
    });
    assert!(!buckets.is_empty(), "{name}: no _bucket series");
    let mut prev = 0.0;
    for (k, v) in &buckets {
        assert!(*v >= prev, "{k}: cumulative bucket decreased ({v} < {prev})");
        prev = *v;
    }
    let inf = buckets.last().map(|(_, v)| *v).unwrap_or(0.0);
    let count = series.get(&format!("{name}_count")).copied().unwrap_or(-1.0);
    assert_eq!(inf, count, "{name}: +Inf bucket must equal _count");
    assert!(series.contains_key(&format!("{name}_sum")), "{name}: missing _sum");
}

struct Client {
    w: BufWriter<TcpStream>,
    r: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            w: BufWriter::new(stream.try_clone().expect("clone")),
            r: BufReader::new(stream),
        }
    }

    fn roundtrip(&mut self, line: &str) -> BTreeMap<String, Value> {
        writeln!(self.w, "{line}").expect("send");
        self.w.flush().expect("flush");
        let mut resp = String::new();
        self.r.read_line(&mut resp).expect("recv");
        let v: Value = serde_json::from_str(resp.trim()).expect("response parses");
        v.as_object().expect("response is an object").clone()
    }
}

fn get_u64(obj: &BTreeMap<String, Value>, key: &str) -> Option<u64> {
    match obj.get(key) {
        Some(Value::Number(serde_json::Number::PosInt(n))) => Some(*n),
        _ => None,
    }
}

#[test]
fn live_server_traces_stats_and_prometheus_metrics() {
    let server = Server::start(ServeConfig { shards: 2, ..ServeConfig::default() })
        .expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = server.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    std::thread::spawn(move || serve_tcp(listener, handle, false, stop2));
    let mut client = Client::connect(addr);

    // --- Trace round-trip: a client-supplied trace id echoes verbatim
    // (normalized to 16 hex digits), a traceless request gets a mint.
    let resp = client.roundtrip(
        r#"{"id":1,"trace":"deadbeef","platform":"GTX Titan","query":{"kind":"eval","flops":[1e9],"bytes":[1e8]}}"#,
    );
    assert_eq!(resp.get("ok"), Some(&Value::Bool(true)), "{resp:?}");
    assert_eq!(
        resp.get("trace"),
        Some(&Value::String("00000000deadbeef".to_string())),
        "client trace must echo, zero-extended"
    );
    let phases = resp.get("phases_us").and_then(Value::as_object).expect("phases_us attached");
    for key in ["queue", "window", "kernel", "serialize", "total"] {
        assert!(phases.contains_key(key), "phases_us missing `{key}`: {phases:?}");
    }

    let resp = client.roundtrip(
        r#"{"id":2,"platform":"GTX Titan","query":{"kind":"eval","flops":[1e9],"bytes":[1e8]}}"#,
    );
    match resp.get("trace") {
        Some(Value::String(t)) => {
            assert_eq!(t.len(), 16, "minted trace is 16 hex digits: {t}");
            assert!(t.bytes().all(|b| b.is_ascii_hexdigit()), "minted trace is hex: {t}");
        }
        other => panic!("telemetry-on server must mint a trace, got {other:?}"),
    }

    // A bad trace is a parse-level rejection naming the field.
    let resp = client.roundtrip(
        r#"{"id":3,"trace":"not-hex","platform":"GTX Titan","query":{"kind":"eval","flops":[1.0],"bytes":[1.0]}}"#,
    );
    assert_eq!(resp.get("ok"), Some(&Value::Bool(false)), "{resp:?}");

    // Serve a known batch of queries so the histograms have real mass.
    const EXTRA: u64 = 30;
    for i in 0..EXTRA {
        let resp = client.roundtrip(&format!(
            r#"{{"id":{},"platform":"Desktop CPU","query":{{"kind":"eval","flops":[2e9],"bytes":[1e8]}}}}"#,
            10 + i
        ));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)), "{resp:?}");
    }

    // --- Stats op: uptime and per-shard live queue depths. `completed`
    // bumps *after* the reply is sent, so poll until the counter settles
    // at the expected total (2 traced evals + EXTRA; id=3 was rejected
    // at parse and never reached the engine).
    let expected = 2 + EXTRA;
    let deadline = Instant::now() + Duration::from_secs(10);
    let result = loop {
        let stats = client.roundtrip(r#"{"op":"stats"}"#);
        let result =
            stats.get("result").and_then(Value::as_object).expect("stats result").clone();
        let completed = get_u64(&result, "completed").expect("stats completed");
        assert!(completed <= expected, "completed overshot: {completed} > {expected}");
        if completed == expected {
            break result;
        }
        assert!(
            Instant::now() < deadline,
            "completed stuck at {completed}, want {expected}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let result = &result;
    match result.get("uptime_s") {
        Some(Value::Number(n)) => assert!(n.as_f64() >= 0.0, "uptime_s must be >= 0"),
        other => panic!("stats must report uptime_s, got {other:?}"),
    }
    match result.get("queue_depths") {
        Some(Value::Array(depths)) => {
            assert_eq!(depths.len(), 2, "one depth per shard: {depths:?}");
            // This client runs serially: queues must be fully drained.
            for d in depths {
                match d {
                    Value::Number(serde_json::Number::PosInt(n)) => assert_eq!(*n, 0),
                    other => panic!("queue depth must be a non-negative integer: {other:?}"),
                }
            }
        }
        other => panic!("stats must report queue_depths, got {other:?}"),
    }

    // --- Metrics op: JSON + Prometheus exposition, with per-phase
    // histogram `_count` equal to the queries this engine completed.
    // Phase records land *before* the reply is sent, and the serialize
    // record lands before each response line hits the wire, so every
    // count has settled by now — but poll anyway to stay robust.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (json, prom) = loop {
        let metrics = client.roundtrip(r#"{"op":"metrics"}"#);
        let result = metrics.get("result").and_then(Value::as_object).expect("metrics result");
        assert_eq!(result.get("kind"), Some(&Value::String("metrics".to_string())));
        assert!(
            matches!(result.get("uptime_s"), Some(Value::Number(_))),
            "metrics op reports uptime_s"
        );
        let json = result.get("json").and_then(Value::as_object).expect("json snapshot").clone();
        let prom = match result.get("prometheus") {
            Some(Value::String(s)) => s.clone(),
            other => panic!("metrics must carry a prometheus string, got {other:?}"),
        };
        let series = parse_prometheus(&prom);
        let count = series.get("serve_phase_total_us_eval_count").copied().unwrap_or(0.0);
        // Histograms are process-global: other suites in this binary would
        // pollute the count, which is why this file holds a single test.
        if count >= expected as f64 {
            break (json, series);
        }
        assert!(
            Instant::now() < deadline,
            "phase histogram count stuck at {count}, want {expected}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    // Every phase histogram carries the same count as queries served.
    for phase in ["queue", "window", "kernel", "serialize", "total"] {
        let name = format!("serve_phase_{phase}_us_eval");
        let count = prom.get(&format!("{name}_count")).copied().unwrap_or(-1.0);
        assert_eq!(
            count, expected as f64,
            "{name}_count must equal queries served ({expected})"
        );
        assert_histogram_shape(&prom, &name);
    }
    // The JSON flavor agrees with the text flavor.
    let h = json
        .get("histograms")
        .and_then(Value::as_object)
        .and_then(|hs| hs.get("serve.phase.total_us.eval"))
        .and_then(Value::as_object)
        .expect("JSON histogram present");
    match h.get("count") {
        Some(Value::Number(serde_json::Number::PosInt(n))) => assert_eq!(*n, expected),
        other => panic!("JSON count must be an integer, got {other:?}"),
    }

    server.shutdown();
}
