//! Functional `serde_derive` replacement for offline builds (see
//! `.devstubs/README.md`). Generates real `Serialize` / `Deserialize` impls
//! against the value-tree traits in the sibling `serde` stub, parsing the
//! item with a hand-rolled token walker instead of `syn` (which is not
//! available offline).
//!
//! Supported shapes — the full surface this workspace uses:
//! - structs with named fields, newtype structs, unit structs (no generics)
//! - enums with unit, single-field newtype, and struct variants
//!   (externally tagged, upstream's default representation)
//! - `#[serde(default)]`, `#[serde(skip_serializing_if = "path")]` on fields
//! - `#[serde(try_from = "Type", into = "Type")]` on containers
//!
//! Anything else — unknown `#[serde(...)]` arguments, generics, multi-field
//! tuple variants — is a **compile error**, never a silently wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    default: bool,
    skip_serializing_if: Option<String>,
}

enum Shape {
    Named(Vec<Field>),
    Newtype,
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
    /// Container-level `#[serde(try_from = "T", into = "T")]` proxying.
    Proxy { name: String, via: String },
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let item = parse_item(input);
    let code = match dir {
        Direction::Serialize => gen_serialize(&item),
        Direction::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        panic!("serde_derive stub generated invalid Rust ({e}):\n{code}")
    })
}

// ---------------------------------------------------------------- parsing

/// Collects `#[serde(...)]` argument strings, skipping every other attribute.
fn take_attrs(trees: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Vec<String> {
    let mut serde_args = Vec::new();
    while matches!(trees.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        trees.next();
        match trees.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(name)) = inner.next() {
                    if name.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            serde_args.push(args.stream().to_string());
                        }
                    }
                }
            }
            other => panic!("serde_derive stub: malformed attribute near {other:?}"),
        }
    }
    serde_args
}

fn skip_visibility(trees: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(trees.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        trees.next();
        if matches!(trees.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            trees.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut trees = input.into_iter().peekable();
    let container_attrs = take_attrs(&mut trees);
    skip_visibility(&mut trees);

    let kind = match trees.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match trees.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if matches!(trees.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    // Container attrs: only the try_from/into pair is recognised.
    let mut try_from = None;
    let mut into = None;
    for args in &container_attrs {
        for (key, val) in parse_attr_args(args, &name) {
            match key.as_str() {
                "try_from" => try_from = val,
                "into" => into = val,
                other => panic!(
                    "serde_derive stub: unsupported container attribute `serde({other})` on `{name}`"
                ),
            }
        }
    }
    if try_from.is_some() || into.is_some() {
        let (Some(tf), Some(via)) = (try_from, into) else {
            panic!("serde_derive stub: `{name}` needs both try_from and into");
        };
        assert_eq!(
            tf, via,
            "serde_derive stub: `{name}` must use the same type for try_from and into"
        );
        return Item::Proxy { name, via };
    }

    match kind.as_str() {
        "struct" => {
            let shape = match trees.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream(), &name))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = top_level_arity(g.stream());
                    if arity != 1 {
                        panic!(
                            "serde_derive stub: tuple struct `{name}` has {arity} fields; \
                             only newtype structs are supported"
                        );
                    }
                    Shape::Newtype
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive stub: malformed struct `{name}` near {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match trees.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive stub: malformed enum `{name}` near {other:?}"),
            };
            Item::Enum {
                variants: parse_variants(body, &name),
                name,
            }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

/// Parses `key = "value"` / bare `key` lists from a `#[serde(...)]` group.
fn parse_attr_args(args: &str, ctx: &str) -> Vec<(String, Option<String>)> {
    args.split(',')
        .map(|clause| {
            let clause = clause.trim();
            match clause.split_once('=') {
                Some((key, val)) => {
                    let val = val.trim().trim_matches('"').to_string();
                    (key.trim().to_string(), Some(val))
                }
                None => (clause.to_string(), None),
            }
        })
        .filter(|(k, _)| {
            if k.is_empty() {
                panic!("serde_derive stub: empty serde attribute on `{ctx}`");
            }
            true
        })
        .collect()
}

fn parse_named_fields(body: TokenStream, ctx: &str) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        let attrs = take_attrs(&mut trees);
        skip_visibility(&mut trees);
        let Some(tree) = trees.next() else { break };
        let TokenTree::Ident(field_name) = tree else {
            panic!("serde_derive stub: expected field name in `{ctx}`, got {tree:?}");
        };
        let field_name = field_name.to_string();
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive stub: expected `:` after `{ctx}.{field_name}`, got {other:?}"
            ),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match trees.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        trees.next();
                        break;
                    }
                    trees.next();
                }
                Some(_) => {
                    trees.next();
                }
            }
        }

        let mut field = Field {
            name: field_name,
            default: false,
            skip_serializing_if: None,
        };
        for args in &attrs {
            for (key, val) in parse_attr_args(args, ctx) {
                match (key.as_str(), val) {
                    ("default", None) => field.default = true,
                    ("skip_serializing_if", Some(path)) => {
                        field.skip_serializing_if = Some(path);
                    }
                    (other, _) => panic!(
                        "serde_derive stub: unsupported field attribute `serde({other})` \
                         on `{ctx}.{}`",
                        field.name
                    ),
                }
            }
        }
        fields.push(field);
    }
    fields
}

fn top_level_arity(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut saw_tokens = false;
    for tree in body {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tree {
            let c = p.as_char();
            if c == '<' {
                depth += 1;
            } else if c == '>' {
                depth -= 1;
            } else if c == ',' && depth == 0 {
                arity += 1;
            }
        }
    }
    if saw_tokens {
        arity + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream, ctx: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        let attrs = take_attrs(&mut trees);
        if !attrs.is_empty() {
            panic!("serde_derive stub: variant-level serde attributes unsupported in `{ctx}`");
        }
        let Some(tree) = trees.next() else { break };
        let TokenTree::Ident(variant_name) = tree else {
            panic!("serde_derive stub: expected variant name in `{ctx}`, got {tree:?}");
        };
        let variant_name = variant_name.to_string();
        let shape = match trees.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                trees.next();
                Shape::Named(parse_named_fields(g, ctx))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = top_level_arity(g.stream());
                trees.next();
                if arity != 1 {
                    panic!(
                        "serde_derive stub: tuple variant `{ctx}::{variant_name}` has {arity} \
                         fields; only newtype variants are supported"
                    );
                }
                Shape::Newtype
            }
            _ => Shape::Unit,
        };
        // Discriminant values (`= expr`) and the trailing comma.
        while let Some(tree) = trees.peek() {
            if matches!(tree, TokenTree::Punct(p) if p.as_char() == ',') {
                trees.next();
                break;
            }
            trees.next();
        }
        variants.push(Variant {
            name: variant_name,
            shape,
        });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn named_to_value(fields: &[Field], access_prefix: &str) -> String {
    let mut code = String::from("{ let mut __m = ::serde::Map::new();\n");
    for f in fields {
        let access = format!("{access_prefix}{}", f.name);
        let insert = format!(
            "__m.insert(\"{n}\".to_string(), ::serde::Serialize::__to_value(&{access}));\n",
            n = f.name
        );
        match &f.skip_serializing_if {
            Some(pred) => {
                code.push_str(&format!("if !{pred}(&{access}) {{ {insert} }}\n"));
            }
            None => code.push_str(&insert),
        }
    }
    code.push_str("::serde::Value::Object(__m) }");
    code
}

fn named_from_value(ty_path: &str, fields: &[Field], obj_var: &str) -> String {
    let mut code = format!("{ty_path} {{\n");
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"missing field `{}`\"))",
                f.name
            )
        };
        code.push_str(&format!(
            "{n}: match {obj_var}.get(\"{n}\") {{ \
             ::std::option::Option::Some(__x) => ::serde::Deserialize::__from_value(__x)?, \
             ::std::option::Option::None => {missing}, }},\n",
            n = f.name
        ));
    }
    code.push('}');
    code
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Proxy { name, via } => (
            name,
            format!(
                "let __proxy: {via} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
                 ::serde::Serialize::__to_value(&__proxy)"
            ),
        ),
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => named_to_value(fields, "self."),
                Shape::Newtype => "::serde::Serialize::__to_value(&self.0)".to_string(),
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    Shape::Newtype => arms.push_str(&format!(
                        "{name}::{v}(__x) => {{ let mut __m = ::serde::Map::new();\n\
                         __m.insert(\"{v}\".to_string(), ::serde::Serialize::__to_value(__x));\n\
                         ::serde::Value::Object(__m) }}\n",
                        v = v.name
                    )),
                    Shape::Named(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_to_value(fields, "");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ let __inner = {inner};\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{v}\".to_string(), __inner);\n\
                             ::serde::Value::Object(__m) }}\n",
                            v = v.name,
                            binds = bindings.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn __to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Proxy { name, via } => (
            name,
            format!(
                "let __proxy: {via} = ::serde::Deserialize::__from_value(__v)?;\n\
                 ::std::convert::TryFrom::try_from(__proxy)\n\
                 .map_err(|__e| ::serde::de::Error::custom(__e))"
            ),
        ),
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::de::Error::custom(\"{name}: expected object\"))?;\n\
                     ::std::result::Result::Ok({})",
                    named_from_value(name, fields, "__obj")
                ),
                Shape::Newtype => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::__from_value(__v)?))"
                ),
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut string_arms = String::new();
            let mut object_arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => string_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    Shape::Newtype => object_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::__from_value(__inner)?)),\n",
                        v = v.name
                    )),
                    Shape::Named(fields) => {
                        let ctor = named_from_value(&format!("{name}::{}", v.name), fields, "__fields");
                        object_arms.push_str(&format!(
                            "\"{v}\" => {{ let __fields = __inner.as_object().ok_or_else(|| \
                             ::serde::de::Error::custom(\"{name}::{v}: expected object\"))?;\n\
                             ::std::result::Result::Ok({ctor}) }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{string_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n{object_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"{name}: expected string or single-key object\")),\n}}"
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn __from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
