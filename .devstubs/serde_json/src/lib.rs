//! Offline `serde_json` replacement used via the workspace
//! `[patch.crates-io]` (see `.devstubs/README.md`). A real JSON emitter and
//! a real recursive-descent JSON parser over the value tree defined in the
//! sibling `serde` stub — `to_string`/`from_str` round-trips are exact, not
//! vacuous.
//!
//! Known divergences from upstream `serde_json` (documented, deterministic):
//! - Object keys are emitted in sorted order (the data model is a
//!   `BTreeMap`), not struct-field declaration order.
//! - Non-finite floats serialize to `null` (same as upstream); on the way
//!   back, `null` deserializes into `f64::NAN` instead of erroring, so
//!   round-trips of NaN-bearing reports stay total.

use std::fmt;

pub use serde::{Map, Number, Value};

/// JSON error: a plain message, no line/column tracking.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.__to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.__to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T> {
    let value = parse(s)?;
    T::__from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------- emitter

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => emit_number(*n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            emit_seq(items.iter(), items.len(), '[', ']', indent, depth, out, |item, out| {
                emit(item, indent, depth + 1, out);
            })
        }
        Value::Object(map) => {
            emit_seq(map.iter(), map.len(), '{', '}', indent, depth, out, |(k, val), out| {
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent, depth + 1, out);
            })
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_seq<I: Iterator>(
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut emit_item: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        emit_item(item, out);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn emit_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if !v.is_finite() => out.push_str("null"),
        Number::Float(v) => {
            // Shortest round-trip formatting with ryu-style notation choice:
            // plain decimal in [1e-5, 1e16), scientific outside — so values
            // like 3.04e-11 serialize the way upstream serde_json prints
            // them. "1" would re-parse as an integer, so integral floats
            // keep a trailing ".0".
            let abs = v.abs();
            if abs != 0.0 && (abs < 1e-5 || abs >= 1e16) {
                out.push_str(&format!("{v:e}"));
            } else {
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error("unpaired surrogate".to_string()));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(
                                c.ok_or_else(|| Error("invalid unicode escape".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".to_string()))?;
        let code =
            u32::from_str_radix(s, 16).map_err(|_| Error(format!("bad \\u escape `{s}`")))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}
