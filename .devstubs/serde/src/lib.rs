//! Offline `serde` replacement used via the workspace `[patch.crates-io]`
//! (see `.devstubs/README.md`).
//!
//! Unlike upstream serde's zero-copy streaming architecture, this crate uses
//! a simple JSON-shaped value tree as its data model: `Serialize` lowers a
//! type to [`Value`], `Deserialize` raises it back. The derive macros in the
//! sibling `serde_derive` stub generate real impls against these traits, so
//! serialization round-trips are functional and exact — not vacuous. The
//! trait *signatures* intentionally differ from upstream (no `Serializer` /
//! `Deserializer` visitors); only derive + `serde_json` entry points are
//! supported, which is the entire surface this workspace uses. Anything else
//! fails to compile rather than silently misbehaving.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data model shared by the `serde` and `serde_json` stubs.
///
/// Objects are ordered maps with sorted keys (`BTreeMap`), so serialized
/// output is deterministic. Field declaration order is not preserved — a
/// documented divergence from upstream `serde_json` struct serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

pub type Map = BTreeMap<String, Value>;

/// Exact number representation: integers keep full `u64`/`i64` precision
/// instead of being squashed through `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

// From conversions used when hand-building `Value` trees (repro reports).

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            // Upstream serde_json maps non-finite floats to null.
            Value::Null
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::PosInt(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::PosInt(v as u64))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::Number(Number::PosInt(v as u64))
        } else {
            Value::Number(Number::NegInt(v))
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

pub mod de {
    use std::fmt;

    /// Deserialization error: a plain message, no position tracking.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl Error {
        pub fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}

/// Lower `self` into the [`Value`] data model. Implemented by the derive
/// macro and the primitive/container impls below; called by `serde_json`.
pub trait Serialize {
    fn __to_value(&self) -> Value;
}

/// Raise a [`Value`] back into `Self`. The lifetime parameter exists only
/// for signature compatibility with upstream `derive` bounds.
pub trait Deserialize<'de>: Sized {
    fn __from_value(v: &Value) -> Result<Self, de::Error>;
}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

fn wrong_type(expected: &str, got: &Value) -> de::Error {
    de::Error(format!("expected {expected}, found {}", got.type_name()))
}

// --- identity impls so `Value` trees themselves serialize ---

impl Serialize for Value {
    fn __to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

// --- primitives ---

impl Serialize for bool {
    fn __to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(wrong_type("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn __from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| de::Error(format!("integer {n} out of range"))),
                    other => Err(wrong_type("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn __from_value(v: &Value) -> Result<Self, de::Error> {
                let wide: i64 = match v {
                    Value::Number(Number::PosInt(n)) => i64::try_from(*n)
                        .map_err(|_| de::Error(format!("integer {n} out of range")))?,
                    Value::Number(Number::NegInt(n)) => *n,
                    other => return Err(wrong_type("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| de::Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value {
                Value::from(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn __from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // Non-finite floats serialize to null (upstream behaviour);
                    // raising null back to NaN keeps round-trips total.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(wrong_type("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn __to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(wrong_type("single-character string", other)),
        }
    }
}

impl Serialize for str {
    fn __to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn __to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(wrong_type("string", other)),
        }
    }
}

// --- references and containers ---

impl<T: ?Sized + Serialize> Serialize for &T {
    fn __to_value(&self) -> Value {
        (**self).__to_value()
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn __to_value(&self) -> Value {
        (**self).__to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        T::__from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn __to_value(&self) -> Value {
        match self {
            Some(x) => x.__to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::__from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn __to_value(&self) -> Value {
        self.as_slice().__to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::__from_value).collect(),
            other => Err(wrong_type("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn __to_value(&self) -> Value {
        self.as_slice().__to_value()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        let items: Vec<T> = Vec::__from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| de::Error(format!("expected array of length {N}, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn __to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.__to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn __from_value(v: &Value) -> Result<Self, de::Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::__from_value(&items[$idx])?,)+))
                    }
                    other => Err(wrong_type("tuple array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn __to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.__to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::__from_value(v)?)))
                .collect(),
            other => Err(wrong_type("object", other)),
        }
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn __to_value(&self) -> Value {
        // Sorted on the way out (Map is a BTreeMap), so output is stable.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.__to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>, S: std::hash::BuildHasher + Default> Deserialize<'de>
    for HashMap<String, V, S>
{
    fn __from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::__from_value(v)?)))
                .collect(),
            other => Err(wrong_type("object", other)),
        }
    }
}
