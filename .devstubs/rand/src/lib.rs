//! Offline `rand` replacement used via the workspace `[patch.crates-io]`
//! (see `.devstubs/README.md`). Unlike a typecheck-only stub, this is a
//! *stream-faithful* reimplementation of the `rand 0.8` surface the
//! workspace uses: `StdRng` is the real ChaCha12 generator behind
//! `rand::rngs::StdRng` (including `rand_core`'s PCG32-based
//! `seed_from_u64` expansion and the 4-block output buffer), `SmallRng`
//! is xoshiro256++ with the reference SplitMix64 seeding, and
//! `gen_range`/`gen_bool` use the upstream sampling algorithms
//! (widening-multiply rejection for integers, the `[1, 2)` mantissa
//! trick for floats, fixed-point comparison for Bernoulli). Seeded
//! streams therefore match the real crate bit for bit, which keeps the
//! repo's seed-pinned synthetic measurements reproducible.

// ------------------------------------------------------------------ traits

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// `rand_core 0.6` default implementation: a PCG32 stream expands the
    /// `u64` into the full seed, 4 bytes at a time.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Upstream `Bernoulli`: `p` is converted to 64-bit fixed point and
    /// compared against one `u64` draw; `p == 1.0` consumes no randomness.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

// ------------------------------------------------------- uniform sampling

pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

/// Upstream `UniformFloat::sample_single`: draw a float in `[1, 2)` by
/// overwriting the exponent bits, shift to `[0, 1)`, then scale. The
/// rejection loop only triggers on rounding edge cases where
/// `value0_1 * scale + low` lands exactly on `high`.
macro_rules! impl_sample_float {
    ($ty:ty, $uty:ty, $next:ident, $bits_to_discard:expr, $one_exp:expr) => {
        impl SampleUniform for $ty {
            fn sample_between<G: RngCore + ?Sized>(
                rng: &mut G,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "UniformSampler::sample_single: low > high");
                } else {
                    assert!(lo < hi, "UniformSampler::sample_single: low >= high");
                }
                let mut scale = hi - lo;
                loop {
                    let value1_2 =
                        <$ty>::from_bits((rng.$next() >> $bits_to_discard) as $uty | $one_exp);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + lo;
                    if inclusive || res < hi {
                        return res;
                    }
                    // Shave one ulp off the scale and retry (upstream
                    // `decrease_masked`).
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    };
}

impl_sample_float!(f32, u32, next_u32, 9, 0x3F80_0000u32);
impl_sample_float!(f64, u64, next_u64, 12, 0x3FF0_0000_0000_0000u64);

/// Upstream `UniformInt::sample_single_inclusive`: widen the draw type to
/// `$u_large` (`u32` for sub-word integers, matching `uniform_int_impl!`),
/// then Lemire-style widening multiply with a rejection zone.
macro_rules! impl_sample_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty, $next:ident) => {
        impl SampleUniform for $ty {
            fn sample_between<G: RngCore + ?Sized>(
                rng: &mut G,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let hi_inc: $ty = if inclusive {
                    assert!(lo <= hi, "UniformSampler::sample_single: low > high");
                    hi
                } else {
                    assert!(lo < hi, "UniformSampler::sample_single: low >= high");
                    hi - 1
                };
                let range =
                    ((hi_inc.wrapping_sub(lo) as $unsigned).wrapping_add(1)) as $u_large;
                if range == 0 {
                    // Span covers the whole type: every draw is accepted.
                    return rng.$next() as $ty;
                }
                let zone = if (<$unsigned>::MAX as u128) <= u16::MAX as u128 {
                    // Small types use a modulus to size the zone.
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$next() as $u_large;
                    let t = (v as $wide) * (range as $wide);
                    let hi_part = (t >> <$u_large>::BITS) as $u_large;
                    let lo_part = t as $u_large;
                    if lo_part <= zone {
                        return lo.wrapping_add(hi_part as $ty);
                    }
                }
            }
        }
    };
}

impl_sample_int!(u8, u8, u32, u64, next_u32);
impl_sample_int!(u16, u16, u32, u64, next_u32);
impl_sample_int!(u32, u32, u32, u64, next_u32);
impl_sample_int!(u64, u64, u64, u128, next_u64);
impl_sample_int!(usize, usize, usize, u128, next_u64);
impl_sample_int!(i8, u8, u32, u64, next_u32);
impl_sample_int!(i16, u16, u32, u64, next_u32);
impl_sample_int!(i32, u32, u32, u64, next_u32);
impl_sample_int!(i64, u64, u64, u128, next_u64);
impl_sample_int!(isize, usize, usize, u128, next_u64);

pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

// ------------------------------------------------------------ ChaCha core

/// ChaCha block function with `ROUNDS` rounds over the classic
/// 64-bit-counter/64-bit-nonce layout (`rand_chacha` uses the same).
fn chacha_block<const ROUNDS: usize>(key: &[u32; 8], counter: u64, out: &mut [u32; 16]) {
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    let mut x = [0u32; 16];
    x[..4].copy_from_slice(&CONSTANTS);
    x[4..12].copy_from_slice(key);
    x[12] = counter as u32;
    x[13] = (counter >> 32) as u32;
    // x[14], x[15]: zero nonce (stream 0).

    let input = x;

    #[inline(always)]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    for _ in 0..ROUNDS / 2 {
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }

    for (o, (v, s)) in out.iter_mut().zip(x.iter().zip(input.iter())) {
        *o = v.wrapping_add(*s);
    }
}

const BUF_WORDS: usize = 64; // rand_chacha buffers 4 blocks at a time.

/// `rand_core::block::BlockRng` over a 4-block ChaCha12 buffer — including
/// the buffer-straddling `next_u64` behavior, so word-level consumption
/// matches the real `StdRng` exactly even after an odd `next_u32`.
#[derive(Debug, Clone)]
struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

impl ChaCha12Core {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }

    fn generate(&mut self) {
        for b in 0..BUF_WORDS / 16 {
            let mut block = [0u32; 16];
            chacha_block::<12>(&self.key, self.counter.wrapping_add(b as u64), &mut block);
            self.buf[b * 16..(b + 1) * 16].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add((BUF_WORDS / 16) as u64);
    }
}

impl RngCore for ChaCha12Core {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let read = |buf: &[u32; BUF_WORDS], i: usize| {
            u64::from(buf[i]) | (u64::from(buf[i + 1]) << 32)
        };
        if self.index < BUF_WORDS - 1 {
            let v = read(&self.buf, self.index);
            self.index += 2;
            v
        } else if self.index >= BUF_WORDS {
            self.generate();
            self.index = 2;
            read(&self.buf, 0)
        } else {
            // One word left: low half from this buffer, high half from the
            // next one.
            let x = u64::from(self.buf[BUF_WORDS - 1]);
            self.generate();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

// -------------------------------------------------------- xoshiro256++

/// xoshiro256++ core (upstream `SmallRng` on 64-bit platforms).
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *w = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        Self { s }
    }

    /// Upstream override: SplitMix64 expansion (the xoshiro reference
    /// seeding), *not* the `rand_core` PCG32 default.
    fn from_u64(mut state: u64) -> Self {
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

// ------------------------------------------------------------- named rngs

pub mod rngs {
    use super::{ChaCha12Core, RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// The real `rand 0.8` `StdRng`: ChaCha with 12 rounds.
    #[derive(Debug, Clone)]
    pub struct StdRng(ChaCha12Core);

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(ChaCha12Core::from_seed(seed))
        }
        // seed_from_u64: the trait default (PCG32 expansion), as upstream.
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    /// The real `rand 0.8` `SmallRng` on 64-bit platforms: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(Xoshiro256PlusPlus::from_seed(seed))
        }

        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256PlusPlus::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro256++ have linear dependencies; upstream
            // takes the high half.
            (self.0.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    /// ECRYPT ChaCha12 test vector: all-zero key and nonce, first 16
    /// keystream bytes. Verifies rounds/layout against the published
    /// cipher, which `rand_chacha` also matches.
    #[test]
    fn chacha12_matches_ecrypt_vector() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        assert_eq!(
            bytes,
            [
                0x9b, 0xf4, 0x9a, 0x6a, 0x07, 0x55, 0xf9, 0x53, 0x81, 0x1f, 0xce, 0x12, 0x5f,
                0x26, 0x83, 0xd5
            ]
        );
    }

    /// The PCG32 seed expansion must spread a small seed across the whole
    /// key (a raw copy would leave 28 zero bytes).
    #[test]
    fn seed_from_u64_expands_seed() {
        let a = StdRng::seed_from_u64(0).next_u64();
        let b = StdRng::seed_from_u64(1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, StdRng::from_seed([0u8; 32]).next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(0..7);
            assert!(n < 7);
        }
    }
}
