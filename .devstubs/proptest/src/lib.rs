//! Offline `proptest` replacement used via the workspace `[patch.crates-io]`
//! (see `.devstubs/README.md`). Unlike a typecheck-only shim, this actually
//! *runs* properties: strategies are samplers over a deterministic PRNG, and
//! the `proptest!` macro expands each property into a `#[test]` that draws
//! `cases` random inputs and executes the body against every one.
//!
//! Divergences from upstream proptest (documented, deterministic):
//! - No shrinking: a failing case reports its case index and seed, but is
//!   not minimised.
//! - Seeding is derived from the property name (FNV-1a) instead of system
//!   entropy, so runs are reproducible without a regression file. Set
//!   `PROPTEST_CASES` to override the case count globally.

pub mod test_runner {
    /// Early-exit marker: property bodies may `return Ok(())` / carry an
    /// error, mirroring upstream's `TestCaseResult` plumbing.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    /// Subset of upstream's config: only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

/// splitmix64: small, seedable, and good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        self.next_u64() % n
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Drives one property: `cases` sampled executions with per-case seeds.
/// Panics from the body (prop_assert!) are annotated with the failing case
/// so the run can be reproduced, then re-raised.
pub fn run_property<F: FnMut(&mut TestRng)>(name: &str, cases: u32, mut body: F) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    let base = fnv1a(name);
    for case in 0..cases {
        let seed = base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "proptest stub: property `{name}` failed at case {case}/{cases} (seed {seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A sampler: `None` means the draw was rejected (`prop_filter`).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                self.sample(rng).map(&f)
            }))
        }

        fn prop_filter<F>(self, _reason: &'static str, f: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                self.sample(rng).filter(|v| f(v))
            }))
        }

        fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
        where
            Self: Sized + 'static,
            S: Strategy + 'static,
            F: Fn(Self::Value) -> S + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                self.sample(rng).and_then(|v| f(v).sample(rng))
            }))
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> Option<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            (self.0)(rng)
        }
    }

    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// Uniform choice between strategies (the `prop_oneof!` backend).
    pub fn one_of<T>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let idx = rng.below(arms.len() as u64) as usize;
            arms[idx].sample(rng)
        }))
    }

    /// Draws a required sample, retrying rejected draws a bounded number of
    /// times (mirrors upstream's global rejection cap).
    pub fn sample_required<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            if let Some(v) = strategy.sample(rng) {
                return v;
            }
        }
        panic!("proptest stub: strategy rejected 1000 consecutive draws (prop_filter too strict?)");
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range");
                    Some(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    Some(lo + (rng.unit_f64() as $t) * (hi - lo))
                }
            }
        )*};
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    let span = self.end as i128 - self.start as i128;
                    assert!(span > 0, "empty range");
                    Some(self.start + (rng.next_u64() as i128).rem_euclid(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    let span = *self.end() as i128 - *self.start() as i128 + 1;
                    assert!(span > 0, "empty range");
                    Some(*self.start() + (rng.next_u64() as i128).rem_euclid(span) as $t)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.sample(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
}

pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};
    use super::TestRng;
    use std::rc::Rc;

    /// Size specification for `collection::vec`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    pub fn vec<S, R>(element: S, size: R) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        R: SizeRange + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let n = size.pick(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(element.sample(rng)?);
            }
            Some(out)
        }))
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = ::core::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> Option<::core::primitive::bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }

    pub const ANY: AnyBool = AnyBool;
}

pub mod num {
    pub mod f64 {
        pub use crate::strategy::BoxedStrategy;
    }
}

/// Expands to one `#[test]` per property; each draws `cases` inputs from the
/// argument strategies and runs the body. `#![proptest_config(..)]` is
/// honoured for its `cases` field.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), __config.cases, |__rng| {
                    $(let $pat = $crate::strategy::sample_required(&($strat), __rng);)+
                    // Result-typed inner closure so bodies may `return Ok(())`.
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!("property case returned error: {}", __e.0);
                    }
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!("prop_assert_eq failed: {:?} != {:?}", __a, __b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!($($fmt)+);
        }
    }};
}

/// Skips the current case when the assumption fails (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub mod prop {
        pub use crate::{bool, collection, num};
    }
}
