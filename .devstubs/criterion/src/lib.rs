//! Typecheck-oriented criterion stub: each bench closure runs once so bench
//! binaries double as smoke tests in offline builds. No statistics, no
//! reports, no CLI handling.

use std::fmt::Display;

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion(());

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("[criterion-stub] bench_function {id}");
        f(&mut Bencher(()));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("[criterion-stub] group {name}");
        BenchmarkGroup { _c: self }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<ID: IntoBenchId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Self {
        eprintln!("[criterion-stub]   bench {}", id.into_bench_id());
        f(&mut Bencher(()));
        self
    }

    pub fn bench_with_input<ID: IntoBenchId, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("[criterion-stub]   bench {}", id.into_bench_id());
        f(&mut Bencher(()), input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher(());

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        black_box(f(setup()));
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }
}

pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.0
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
